// Tests for the observability layer (src/obs): histogram bucketing, the
// associative/commutative metrics merge, the fixed-capacity TraceBuffer,
// span nesting, the exporters, and -- when built with RT_OBS=ON -- that
// the instrumented pipeline records identical metrics at any thread count
// while leaving the simulated stats untouched.
//
// This binary is built in BOTH configurations: the default (RT_OBS=OFF)
// build checks that the disabled layer stays zero-size and that the
// macros still compile, and the `obs` preset build exercises the live
// recording path. Tests that need a live recorder are compiled under
// RT_OBS_ENABLED.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/units.h"
#include "obs/obs.h"
#include "runtime/sweep.h"
#include "sim/link_sim.h"

namespace rt::obs {
namespace {

// The build-shape contract: RT_OBS=OFF must cost nothing, so the Recorder
// every PacketWorkspace embeds has to stay an empty type.
#if RT_OBS_ENABLED
static_assert(kEnabled, "RT_OBS_ENABLED build must report kEnabled");
#else
static_assert(!kEnabled, "default build must report !kEnabled");
static_assert(std::is_empty_v<Recorder>,
              "disabled-build Recorder must stay zero-size so PacketWorkspace pays nothing");
#endif

// ---------------------------------------------------------------------------
// HistogramData

TEST(HistogramTest, BucketIndexMapsOctaves) {
  // Bucket 0 collects non-positive and non-finite samples.
  EXPECT_EQ(HistogramData::bucket_index(0.0), 0);
  EXPECT_EQ(HistogramData::bucket_index(-3.5), 0);
  EXPECT_EQ(HistogramData::bucket_index(std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(HistogramData::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0);
  // 1.0 = 0.5 * 2^1 -> bucket 33, whose inclusive lower bound is 1.0.
  EXPECT_EQ(HistogramData::bucket_index(1.0), 33);
  EXPECT_EQ(HistogramData::bucket_lower_bound(33), 1.0);
  EXPECT_EQ(HistogramData::bucket_index(2.0), 34);
  EXPECT_EQ(HistogramData::bucket_index(0.75), 32);
  EXPECT_EQ(HistogramData::bucket_lower_bound(32), 0.5);
  // Extremes clamp into the first / last real bucket.
  EXPECT_EQ(HistogramData::bucket_index(std::numeric_limits<double>::denorm_min()), 1);
  EXPECT_EQ(HistogramData::bucket_index(1e300), HistogramData::kBuckets - 1);
  // Within the unclamped range the bucket's lower bound never exceeds
  // the sample (values below ~2^-32 clamp up into bucket 1).
  for (const double v : {1e-9, 0.1, 0.5, 1.0, 3.0, 64.0, 1e9}) {
    const int i = HistogramData::bucket_index(v);
    EXPECT_LE(HistogramData::bucket_lower_bound(i), v) << "v=" << v;
  }
}

TEST(HistogramTest, ObserveTracksCountMinMax) {
  HistogramData h;
  for (const double v : {2.0, 0.25, 8.0, 0.25}) h.observe(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.min, 0.25);
  EXPECT_EQ(h.max, 8.0);
  std::uint64_t total = 0;
  for (const auto b : h.buckets) total += b;
  EXPECT_EQ(total, h.count);
}

TEST(HistogramTest, MergeMatchesAnyPartition) {
  // 32 varied samples accumulated whole vs merged from partitions.
  std::vector<double> samples;
  for (int i = 0; i < 32; ++i) samples.push_back(0.01 * (i + 1) * (i % 7 + 1));
  HistogramData whole;
  for (const double v : samples) whole.observe(v);
  for (const int buckets : {1, 2, 3, 5, 32}) {
    std::vector<HistogramData> parts(static_cast<std::size_t>(buckets));
    for (std::size_t i = 0; i < samples.size(); ++i)
      parts[i % static_cast<std::size_t>(buckets)].observe(samples[i]);
    HistogramData merged;
    // Reverse merge order to also exercise commutativity.
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(merged, whole) << "partitions=" << buckets;
  }
}

TEST(HistogramTest, DefaultIsTheMergeIdentity) {
  HistogramData h;
  h.observe(3.0);
  h.observe(0.5);
  const HistogramData copy = h;
  h.merge(HistogramData{});
  EXPECT_EQ(h, copy);
  HistogramData other;
  other.merge(copy);
  EXPECT_EQ(other, copy);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, AddAndObserveAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add(Counter::kPacketsSimulated, 2);
  m.add(Counter::kPacketsSimulated, 3);
  m.observe(Histogram::kEqualizerResidual, 1.5);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.count(Counter::kPacketsSimulated), 5u);
  EXPECT_EQ(m.count(Counter::kBitErrors), 0u);
  EXPECT_EQ(m.histogram(Histogram::kEqualizerResidual).count, 1u);
  m.reset();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m, MetricsRegistry{});
}

TEST(MetricsRegistryTest, AnyPartitionMergesToTheWhole) {
  // Synthetic per-packet registries with varied contents, accumulated
  // whole vs merged from several partitions in reverse order -- the same
  // discipline LinkStats::merge is tested under.
  std::vector<MetricsRegistry> parts;
  MetricsRegistry whole;
  for (int i = 0; i < 16; ++i) {
    MetricsRegistry m;
    m.add(Counter::kPacketsSimulated, 1);
    m.add(Counter::kDfeBranchesExpanded, static_cast<std::uint64_t>(3 * i + 1));
    if (i % 5 == 0) m.add(Counter::kPreambleDetectFail, 1);
    m.observe(Histogram::kEqualizerResidual, 0.1 * (i + 1));
    m.observe(Histogram::kPreambleResidual, 1.0 / (i + 1));
    whole.merge(m);
    parts.push_back(m);
  }
  for (const int buckets : {1, 2, 3, 5, 16}) {
    std::vector<MetricsRegistry> acc(static_cast<std::size_t>(buckets));
    for (std::size_t i = 0; i < parts.size(); ++i)
      acc[i % static_cast<std::size_t>(buckets)].merge(parts[i]);
    MetricsRegistry merged;
    for (auto it = acc.rbegin(); it != acc.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(merged, whole) << "partitions=" << buckets;
  }
}

TEST(MetricsRegistryTest, InfoTablesCoverEveryEnumerator) {
  // The export tables are indexed by enumerator; a new Counter/Histogram
  // without a table entry would export a null name.
  for (const auto& info : kCounterInfo) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.unit, nullptr);
  }
  for (const auto& info : kHistogramInfo) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.unit, nullptr);
  }
  EXPECT_FALSE(kHistogramInfo[static_cast<std::size_t>(Histogram::kQueueWaitUs)].deterministic);
}

// ---------------------------------------------------------------------------
// TraceBuffer

TEST(TraceBufferTest, DropsBeyondCapacityAndCounts) {
  TraceBuffer buf(4);
  EXPECT_EQ(buf.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    const bool ok = buf.push({"span_test", i, 1, 0, 0});
    EXPECT_EQ(ok, i < 4);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_TRUE(buf.push({"span_test", 9, 1, 0, 0}));
}

TEST(TraceBufferTest, DefaultCapacityIsHonored) {
  const TraceBuffer buf;
  EXPECT_EQ(buf.capacity(), TraceBuffer::default_capacity());
  EXPECT_GT(buf.capacity(), 0u);
}

// ---------------------------------------------------------------------------
// Instrumentation macros: must compile and be harmless in every build,
// with or without a bound recorder.

TEST(MacroTest, MacrosAreSafeWithNoRecorderBound) {
  RT_TRACE_SPAN("unbound_test");
  RT_OBS_COUNT(kPacketsSimulated, 1);
  RT_OBS_OBSERVE(kEqualizerResidual, 1.0);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Exporters (span/metrics types exist in both builds).

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ExportTest, ChromeTraceAndMetricsJsonAreWellFormed) {
  std::vector<SpanRecord> spans;
  spans.push_back({"inner_test", 1500, 400, 0, 1});
  spans.push_back({"outer_test", 1000, 2000, 0, 0});
  MetricsRegistry m;
  m.add(Counter::kPacketsSimulated, 7);
  m.observe(Histogram::kEqualizerResidual, 0.5);
  m.observe(Histogram::kEqualizerResidual, 3.0);

  const auto dir = std::filesystem::temp_directory_path();
  const auto trace_path = dir / "rt_test_obs_trace.json";
  const auto metrics_path = dir / "rt_test_obs_metrics.json";
  write_chrome_trace(trace_path.string(), spans);
  write_metrics_json(metrics_path.string(), m, spans);

  const std::string trace = slurp(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"inner_test\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"depth\":1}"), std::string::npos);

  const std::string metrics = slurp(metrics_path);
  EXPECT_NE(metrics.find("\"schema\": \"rt-metrics-v2\""), std::string::npos);
  EXPECT_NE(metrics.find("\"packets_simulated\": 7"), std::string::npos);
  EXPECT_NE(metrics.find("\"equalizer_residual\""), std::string::npos);
  EXPECT_NE(metrics.find("\"count\": 2"), std::string::npos);
  // Per-stage aggregates from the span list (one entry per span name).
  EXPECT_NE(metrics.find("\"stages\""), std::string::npos);
  EXPECT_NE(metrics.find("\"inner_test\": {\"calls\": 1, \"total_us\": 0.4"), std::string::npos);
  EXPECT_NE(metrics.find("\"outer_test\": {\"calls\": 1, \"total_us\": 2"), std::string::npos);
  // Every counter exports, even zero-valued ones (fixed schema).
  EXPECT_NE(metrics.find("\"trace_spans_dropped\": 0"), std::string::npos);
  std::filesystem::remove(trace_path);
  std::filesystem::remove(metrics_path);
}

TEST(ExportTest, FoldedStacksRebuildChainsAndAggregate) {
  // Two decode passes on thread 0, one with a nested sync span (records
  // close children-first, so the child precedes its parent here), plus a
  // root-level scan on thread 1 that must not inherit thread 0's stack.
  std::vector<SpanRecord> spans;
  spans.push_back({"sync_test", 1200, 300, 0, 1});
  spans.push_back({"decode_test", 1000, 2000, 0, 0});
  spans.push_back({"decode_test", 4000, 1000, 0, 0});
  spans.push_back({"scan_test", 500, 4000, 1, 0});

  const auto path = std::filesystem::temp_directory_path() / "rt_test_obs_folded.txt";
  write_folded_stacks(path.string(), spans);
  const std::string folded = slurp(path);
  // Inclusive aggregation: both decode spans merge into one line; the
  // nested span keeps its full chain; values are rounded microseconds.
  EXPECT_NE(folded.find("decode_test 3\n"), std::string::npos);
  EXPECT_NE(folded.find("decode_test;sync_test 0\n"), std::string::npos);
  EXPECT_NE(folded.find("scan_test 4\n"), std::string::npos);
  // No cross-thread chain leaked.
  EXPECT_EQ(folded.find("decode_test;scan_test"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ExportTest, StageSummaryPrintsAggregatedStages) {
  std::vector<SpanRecord> spans;
  spans.push_back({"dfe_test", 0, 2000, 0, 0});
  spans.push_back({"dfe_test", 3000, 4000, 0, 0});
  MetricsRegistry m;
  m.add(Counter::kLsSolves, 3);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_stage_summary(tmp, m, spans);
  std::rewind(tmp);
  std::string text;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), tmp) != nullptr) text += buf;
  std::fclose(tmp);
  EXPECT_NE(text.find("dfe_test"), std::string::npos);
  EXPECT_NE(text.find("ls_solves"), std::string::npos);
  // Zero-valued counters are suppressed in the human-readable summary.
  EXPECT_EQ(text.find("pixel_cal_solves"), std::string::npos);
}

TEST(ExportTest, StageSummaryIsSilentWhenEmpty) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_stage_summary(tmp, MetricsRegistry{}, {});
  std::rewind(tmp);
  char buf[8];
  EXPECT_EQ(std::fgets(buf, sizeof(buf), tmp), nullptr);
  std::fclose(tmp);
}

// ---------------------------------------------------------------------------
// Pipeline-level coverage. A small-but-real link configuration (the same
// shape test_runtime's determinism tests use) keeps these fast.

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

std::vector<runtime::SweepPoint> fast_points() {
  const auto params = fast_params();
  const auto tag = params.tag_config();
  const auto offline = sim::train_offline_model(params, tag);
  std::vector<runtime::SweepPoint> points;
  for (const double snr : {14.0, 30.0}) {
    runtime::SweepPoint pt;
    pt.params = params;
    pt.tag = tag;
    pt.channel.snr_override_db = snr;
    pt.channel.noise_seed = static_cast<std::uint64_t>(snr);
    pt.sim.seed = 7;
    pt.sim.offline_yaws_deg = {0.0};
    pt.sim.shared_offline_model = offline;
    points.push_back(pt);
  }
  return points;
}

/// Zeroes the metrics a thread-count comparison may not rely on: the
/// queue-wait histogram is wall-clock (flagged non-deterministic in
/// kHistogramInfo) and span drops depend on batch timing only through the
/// buffer, never on the data.
void zero_nondeterministic(MetricsRegistry& m) {
  m.histogram(Histogram::kQueueWaitUs).reset();
  m.counters[static_cast<std::size_t>(Counter::kTraceSpansDropped)] = 0;
}

TEST(ObsSweepTest, StatsMatchAcrossThreadCountsWithObsCompiledEither) {
  // The sweep's simulated stats must not depend on the observability
  // build or the thread count; this runs in both configurations.
  const auto points = fast_points();
  runtime::SweepOptions so;
  so.packets = 4;
  so.payload_bytes = 16;
  so.threads = 1;
  const auto serial = runtime::parallel_sweep(points, so);
  so.threads = 4;
  const auto parallel = runtime::parallel_sweep(points, so);
  ASSERT_EQ(serial.stats.size(), parallel.stats.size());
  for (std::size_t i = 0; i < serial.stats.size(); ++i) {
    EXPECT_EQ(serial.stats[i].packets, parallel.stats[i].packets);
    EXPECT_EQ(serial.stats[i].preamble_failures, parallel.stats[i].preamble_failures);
    EXPECT_EQ(serial.stats[i].bit_errors, parallel.stats[i].bit_errors);
    EXPECT_EQ(serial.stats[i].total_bits, parallel.stats[i].total_bits);
  }

#if RT_OBS_ENABLED
  // Data-derived metrics are bit-identical at any thread count once the
  // wall-clock-fed pieces are zeroed out.
  MetricsRegistry a = serial.metrics;
  MetricsRegistry b = parallel.metrics;
  EXPECT_FALSE(a.empty());
  zero_nondeterministic(a);
  zero_nondeterministic(b);
  EXPECT_EQ(a, b);
  const std::uint64_t expected_packets =
      static_cast<std::uint64_t>(points.size()) * static_cast<std::uint64_t>(so.packets);
  EXPECT_EQ(a.count(Counter::kPacketsSimulated), expected_packets);
  EXPECT_GT(a.count(Counter::kPayloadBits), 0u);
  EXPECT_GT(a.count(Counter::kDfeBranchesExpanded), 0u);
  EXPECT_GT(a.count(Counter::kTrainingSolves), 0u);
  EXPECT_FALSE(serial.trace.empty());
  EXPECT_FALSE(parallel.trace.empty());
#else
  // RT_OBS=OFF: the sweep result carries no observability payload.
  EXPECT_TRUE(serial.metrics.empty());
  EXPECT_TRUE(serial.trace.empty());
  EXPECT_TRUE(parallel.trace.empty());
#endif
}

#if RT_OBS_ENABLED

TEST(SpanScopeTest, RecordsNestedSpansInClosingOrder) {
  Recorder rec;
  {
    const ScopedBind bind(rec);
    RT_TRACE_SPAN("outer_test");
    { RT_TRACE_SPAN("inner_test"); }
  }
  ASSERT_EQ(rec.trace.size(), 2u);
  const auto spans = rec.trace.spans();
  // Spans land at scope exit: children close (and record) before parents.
  EXPECT_STREQ(spans[0].name, "inner_test");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_STREQ(spans[1].name, "outer_test");
  EXPECT_EQ(spans[1].depth, 0);
  // The child interval nests inside the parent interval.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].dur_ns, spans[1].start_ns + spans[1].dur_ns);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_EQ(rec.open_depth, 0);
}

TEST(SpanScopeTest, UnboundSpansRecordNothing) {
  Recorder rec;
  { RT_TRACE_SPAN("never_bound_test"); }
  EXPECT_EQ(rec.trace.size(), 0u);
  EXPECT_EQ(current_recorder(), nullptr);
}

TEST(SpanScopeTest, BindingNestsAndRestores) {
  Recorder a;
  Recorder b;
  {
    const ScopedBind bind_a(a);
    EXPECT_EQ(current_recorder(), &a);
    {
      const ScopedBind bind_b(b);
      EXPECT_EQ(current_recorder(), &b);
      RT_TRACE_SPAN("goes_to_b_test");
    }
    EXPECT_EQ(current_recorder(), &a);
  }
  EXPECT_EQ(current_recorder(), nullptr);
  EXPECT_EQ(a.trace.size(), 0u);
  EXPECT_EQ(b.trace.size(), 1u);
}

TEST(SpanScopeTest, FullBufferCountsDropsInTheRegistry) {
  Recorder rec;
  const ScopedBind bind(rec);
  const std::size_t cap = rec.trace.capacity();
  for (std::size_t i = 0; i < cap + 5; ++i) {
    RT_TRACE_SPAN("fill_test");
  }
  EXPECT_EQ(rec.trace.size(), cap);
  EXPECT_EQ(rec.trace.dropped(), 5u);
  EXPECT_EQ(rec.metrics.count(Counter::kTraceSpansDropped), 5u);
  rec.clear();
  EXPECT_EQ(rec.trace.size(), 0u);
  EXPECT_TRUE(rec.metrics.empty());
}

TEST(ObsPipelineTest, StageSpansCoverThePipelineAndNestWellFormed) {
  const auto points = fast_points();
  const auto& pt = points[1];  // high SNR: preamble always found
  const sim::LinkSimulator link(pt.params, pt.tag, pt.channel, pt.sim);
  sim::PacketWorkspace ws;
  (void)link.run_packet(0, 16, ws);  // warm-up
  ws.obs.clear();
  const auto out = link.run_packet(1, 16, ws);
  EXPECT_TRUE(out.preamble_found);

  const auto spans = ws.obs.trace.spans();
  ASSERT_FALSE(spans.empty());
  // Every receive stage shows up, and the root "packet" span closes last.
  for (const char* stage : {"packet", "modulate", "channel", "lc_synthesize",
                            "preamble_detect", "preamble_correct", "train", "dfe",
                            "unmap", "demodulate"}) {
    bool found = false;
    for (const auto& s : spans) found = found || std::string_view(s.name) == stage;
    EXPECT_TRUE(found) << "missing span: " << stage;
  }
  EXPECT_STREQ(spans.back().name, "packet");
  EXPECT_EQ(spans.back().depth, 0);

  // Well-formed nesting: every depth-d>0 span is contained in a span of
  // depth d-1 that closes after it (records are in closing order).
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].depth == 0) continue;
    bool contained = false;
    for (std::size_t j = i + 1; j < spans.size() && !contained; ++j) {
      contained = spans[j].depth == spans[i].depth - 1 && spans[j].tid == spans[i].tid &&
                  spans[j].start_ns <= spans[i].start_ns &&
                  spans[j].start_ns + spans[j].dur_ns >= spans[i].start_ns + spans[i].dur_ns;
    }
    EXPECT_TRUE(contained) << "orphan span " << spans[i].name << " at index " << i;
  }

  // The per-packet counters landed in the same recorder.
  EXPECT_EQ(ws.obs.metrics.count(Counter::kPacketsSimulated), 1u);
  EXPECT_GT(ws.obs.metrics.count(Counter::kDfeBranchesExpanded), 0u);
  EXPECT_EQ(ws.obs.metrics.histogram(Histogram::kEqualizerResidual).count, 1u);
}

TEST(ObsPipelineTest, SerialWorkspaceLoopMatchesSweepMetrics) {
  // The sweep's merged registry must equal a plain serial run_packet loop
  // over the same indices -- observability obeys the same partition
  // discipline as LinkStats.
  const auto points = fast_points();
  runtime::SweepOptions so;
  so.packets = 4;
  so.payload_bytes = 16;
  so.threads = 3;
  so.batch_packets = 2;
  const auto sweep = runtime::parallel_sweep(points, so);

  MetricsRegistry serial;
  for (const auto& pt : points) {
    const sim::LinkSimulator link(pt.params, pt.tag, pt.channel, pt.sim);
    sim::PacketWorkspace ws;
    for (int i = 0; i < so.packets; ++i) {
      ws.obs.clear();
      (void)link.run_packet(static_cast<std::uint64_t>(i), so.payload_bytes, ws);
      serial.merge(ws.obs.metrics);
    }
  }

  MetricsRegistry merged = sweep.metrics;
  zero_nondeterministic(merged);
  // The serial loop never executes sweep batches or waits on a queue.
  merged.counters[static_cast<std::size_t>(Counter::kSweepBatches)] = 0;
  zero_nondeterministic(serial);
  EXPECT_EQ(merged, serial);
}

#endif  // RT_OBS_ENABLED

// ---------------------------------------------------------------------------
// Golden lockdown: the simulated outcome of a fixed-seed run, recorded
// from the default (RT_OBS=OFF) build. The obs build runs the same
// assertions, proving instrumentation never perturbs the data path.

TEST(ObsGoldenTest, FixedSeedStatsMatchTheRecordedBaseline) {
  const auto points = fast_points();
  auto pt = points[0];
  pt.channel.snr_override_db = 4.0;  // low enough for nonzero error counts
  const sim::LinkSimulator link(pt.params, pt.tag, pt.channel, pt.sim);
  const auto stats = link.run(6, 16);
  EXPECT_EQ(stats.packets, 6);
  // Golden values measured once from the RT_OBS=OFF build; both builds
  // must reproduce them bit-for-bit.
  EXPECT_EQ(stats.preamble_failures, 0);
  EXPECT_EQ(stats.bit_errors, 83u);
  EXPECT_EQ(stats.total_bits, 768u);
}

}  // namespace
}  // namespace rt::obs
