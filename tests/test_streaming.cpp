// Scenario harness for the streaming sample-level receiver.
//
// Locks down the contracts in stream/streaming_receiver.h: back-to-back
// frames, inter-frame garbage, truncated final frames, false-preamble
// rejection in noise, missed-preamble recovery, ring wraparound at
// awkward capacities -- plus the two golden gates: chunk-size invariance
// (bit-identical decodes whether samples arrive one at a time or all at
// once) and packet-path equivalence (streaming over concatenated
// run_packet waveforms reproduces the packet-at-a-time results bit for
// bit, including through a CSV trace round-trip).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"
#include "phy/frame.h"
#include "sim/link_sim.h"
#include "sim/packet_workspace.h"
#include "sim/trace.h"
#include "stream/ring_buffer.h"
#include "stream/sim_source.h"
#include "stream/source.h"
#include "stream/streaming_receiver.h"

namespace rt::stream {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

sim::ChannelConfig fast_channel(double snr_db) {
  sim::ChannelConfig ch;
  ch.snr_override_db = snr_db;
  ch.noise_seed = 7;
  return ch;
}

sim::SimOptions fast_options() {
  sim::SimOptions o;
  o.seed = 42;
  o.offline_yaws_deg = {0.0};
  return o;
}

constexpr std::size_t kPayloadBytes = 3;

StreamOptions options_for(const StreamTruth& truth) {
  StreamOptions o;
  o.payload_slots = truth.payload_slots;
  return o;
}

struct DecodedFrame {
  std::uint64_t start = 0;
  std::vector<std::uint8_t> bits;
  phy::PreambleDetection det;
};

struct CollectSink final : FrameSink {
  std::vector<DecodedFrame> frames;
  void on_frame(const StreamFrame& f) override {
    DecodedFrame d;
    d.start = f.start_sample;
    d.bits.assign(f.bits.begin(), f.bits.end());
    d.det = f.detection;
    frames.push_back(std::move(d));
  }
};

/// Pushes `wave` through `rx` in `chunk`-sized pieces (0 = all at once),
/// then flushes.
CollectSink run_stream(StreamingReceiver& rx, const sig::IqWaveform& wave, std::size_t chunk) {
  CollectSink sink;
  const std::span<const sig::Complex> all(wave.samples);
  if (chunk == 0) {
    rx.push_samples(all, sink);
  } else {
    for (std::size_t off = 0; off < all.size(); off += chunk)
      rx.push_samples(all.subspan(off, std::min(chunk, all.size() - off)), sink);
  }
  rx.flush(sink);
  return sink;
}

/// Bit errors of `frame` against the scenario ground truth for frame `k`.
std::size_t truth_errors(const StreamTruth& truth, std::size_t k, const DecodedFrame& frame) {
  const auto& t = truth.frames[k];
  EXPECT_GE(frame.bits.size(), t.payload_bits);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < t.payload_bits; ++i)
    errors += frame.bits[i] != truth.payload_bits[t.first_payload_bit + i] ? 1 : 0;
  return errors;
}

TEST(SampleRing, WrapAroundAtAwkwardCapacity) {
  // Capacity 7 against pushes of 3: every offset and split gets exercised.
  SampleRing ring(7);
  std::vector<sig::Complex> chunk(3);
  std::uint64_t next = 0;
  for (int round = 0; round < 20; ++round) {
    for (auto& c : chunk) c = sig::Complex(static_cast<double>(next++), -1.0);
    if (ring.free_space() < chunk.size()) ring.discard_to(ring.abs_end() - (7 - chunk.size()));
    ring.append(chunk);
    // Everything retained must read back as its absolute index.
    std::vector<sig::Complex> out(ring.size());
    ring.copy_out(ring.abs_begin(), out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].real(), static_cast<double>(ring.abs_begin() + i));
      EXPECT_EQ(ring.at(ring.abs_begin() + i), out[i]);
    }
  }
  EXPECT_EQ(ring.abs_end(), 60u);
}

TEST(StreamingReceiver, DecodesBackToBackFrames) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(26.0), fast_options());
  StreamScenario sc;
  sc.packets = 3;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNone;  // frames butt up back to back
  auto truth = build_stream(sim, sc);
  // A short all-zero run stands in for the receiver staying powered after
  // the last discharge, so the final window can complete before flush.
  truth.waveform.samples.resize(truth.waveform.samples.size() + 200);

  StreamingReceiver rx(sim.demodulator(), options_for(truth));
  const auto sink = run_stream(rx, truth.waveform, 4096);
  ASSERT_EQ(sink.frames.size(), truth.frames.size());
  for (std::size_t k = 0; k < truth.frames.size(); ++k) {
    EXPECT_EQ(truth_errors(truth, k, sink.frames[k]), 0u) << "frame " << k;
    EXPECT_NEAR(static_cast<double>(sink.frames[k].start),
                static_cast<double>(truth.frames[k].start_sample), 3.0);
  }
  EXPECT_EQ(rx.stats().frames_decoded, truth.frames.size());
  EXPECT_EQ(rx.stats().truncated_frames, 0u);
}

TEST(StreamingReceiver, GoldenEquivalenceWithPacketPathAtAnyChunkSize) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(24.0), fast_options());
  StreamScenario sc;
  sc.packets = 3;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNoise;
  const auto truth = build_stream(sim, sc);

  // Packet-at-a-time reference: the exact per-packet results the golden
  // gate demands bit for bit.
  struct Reference {
    std::vector<std::uint8_t> bits;
    phy::PreambleDetection det;
    std::size_t bit_errors = 0;
  };
  std::vector<Reference> ref;
  sim::LinkStats ref_stats;
  sim::PacketWorkspace ws;
  for (int i = 0; i < sc.packets; ++i) {
    const auto outcome = sim.run_packet(static_cast<std::uint64_t>(i), sc.payload_bytes, ws);
    ASSERT_TRUE(outcome.preamble_found);
    Reference r;
    r.bits = ws.result.bits;
    r.det = ws.result.detection;
    r.bit_errors = outcome.bit_errors;
    ref.push_back(std::move(r));
    ++ref_stats.packets;
    ref_stats.bit_errors += outcome.bit_errors;
    ref_stats.total_bits += outcome.bits;
  }

  // One sample at a time, two primes, and the whole stream at once: every
  // chunking must reproduce the reference exactly.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{17}, std::size_t{997},
                                  std::size_t{0}}) {
    StreamingReceiver rx(sim.demodulator(), options_for(truth));
    const auto sink = run_stream(rx, truth.waveform, chunk);
    ASSERT_EQ(sink.frames.size(), ref.size()) << "chunk " << chunk;
    sim::LinkStats stats;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      const auto& got = sink.frames[k];
      const auto& want = ref[k];
      EXPECT_EQ(got.bits, want.bits) << "chunk " << chunk << " frame " << k;
      // The decode window hands demodulate_into the same samples the
      // packet path saw, so timing and regression coefficients are
      // bit-identical, not merely close. (correlation_peak is excluded:
      // the two paths compute it through differently-rooted prefix sums.)
      EXPECT_EQ(got.start,
                truth.frames[k].packet_offset + want.det.start_sample)
          << "chunk " << chunk << " frame " << k;
      EXPECT_EQ(got.det.a, want.det.a);
      EXPECT_EQ(got.det.b, want.det.b);
      EXPECT_EQ(got.det.c, want.det.c);
      EXPECT_EQ(got.det.normalized_residual, want.det.normalized_residual);
      EXPECT_EQ(got.det.snr.snr_db, want.det.snr.snr_db);
      ++stats.packets;
      stats.bit_errors += truth_errors(truth, k, got);
      stats.total_bits += truth.frames[k].payload_bits;
    }
    EXPECT_EQ(stats.packets, ref_stats.packets);
    EXPECT_EQ(stats.bit_errors, ref_stats.bit_errors);
    EXPECT_EQ(stats.total_bits, ref_stats.total_bits);
    EXPECT_EQ(stats.ber(), ref_stats.ber());
  }
}

TEST(StreamingReceiver, RejectsInterFrameGarbage) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(26.0), fast_options());
  StreamScenario sc;
  sc.packets = 3;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kGarbage;  // signal-level random firings
  sc.gap_slots = 24;
  sc.lead_in_slots = 16;
  sc.tail_slots = 16;
  const auto truth = build_stream(sim, sc);

  StreamingReceiver rx(sim.demodulator(), options_for(truth));
  const auto sink = run_stream(rx, truth.waveform, 4096);
  // Exactly the real frames -- the garbage produced no phantom decodes --
  // and every frame is clean despite the hostile neighbourhood.
  ASSERT_EQ(sink.frames.size(), truth.frames.size());
  for (std::size_t k = 0; k < truth.frames.size(); ++k)
    EXPECT_EQ(truth_errors(truth, k, sink.frames[k]), 0u) << "frame " << k;
}

TEST(StreamingReceiver, RejectsFalsePreamblesInPureNoise) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(20.0), fast_options());
  // Two seconds of idle channel: baseline plus AWGN, no tag activity.
  auto realization = sim.channel().make_realization();
  lcm::SynthScratch scratch;
  sig::IqWaveform noise;
  Rng noise_rng(123);
  realization.synthesize_into({}, 2.0, &noise_rng, scratch, noise);

  StreamOptions opts;
  opts.payload_slots = 8;
  StreamingReceiver rx(sim.demodulator(), opts);
  const auto sink = run_stream(rx, noise, 1024);
  EXPECT_EQ(sink.frames.size(), 0u);
  EXPECT_EQ(rx.stats().frames_decoded, 0u);
  EXPECT_EQ(rx.stats().samples_pushed, noise.size());
}

TEST(StreamingReceiver, RecoversAfterMissedPreamble) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(26.0), fast_options());
  StreamScenario sc;
  sc.packets = 2;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNoise;
  auto truth = build_stream(sim, sc);
  // Blank out frame 0's preamble: the gate never crosses there, so the
  // receiver must sail past the dead frame and still catch frame 1.
  const std::size_t ref_len = sim.demodulator().preamble().reference().size();
  for (std::size_t i = 0; i < ref_len; ++i)
    truth.waveform.samples[truth.frames[0].start_sample + i] = sig::Complex{};

  StreamingReceiver rx(sim.demodulator(), options_for(truth));
  const auto sink = run_stream(rx, truth.waveform, 512);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(truth_errors(truth, 1, sink.frames[0]), 0u);
  EXPECT_NEAR(static_cast<double>(sink.frames[0].start),
              static_cast<double>(truth.frames[1].start_sample), 3.0);
}

TEST(StreamingReceiver, CountsTruncatedFinalFrame) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(26.0), fast_options());
  StreamScenario sc;
  sc.packets = 2;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNoise;
  sc.tail_slots = 0;
  auto truth = build_stream(sim, sc);
  // Cut the stream in the middle of the last frame's payload.
  const auto layout = phy::FrameLayout::for_params(p, truth.payload_slots);
  const std::size_t frame_samples =
      static_cast<std::size_t>(layout.total_slots()) * p.samples_per_slot();
  truth.waveform.samples.resize(
      static_cast<std::size_t>(truth.frames.back().start_sample) + frame_samples / 2);

  StreamingReceiver rx(sim.demodulator(), options_for(truth));
  const auto sink = run_stream(rx, truth.waveform, 256);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(truth_errors(truth, 0, sink.frames[0]), 0u);
  EXPECT_EQ(rx.stats().truncated_frames, 1u);
  // The receiver is reusable after a truncation: a fresh copy of the
  // same intact scenario decodes both frames.
  const auto intact = build_stream(sim, sc);
  const auto sink2 = run_stream(rx, intact.waveform, 256);
  EXPECT_EQ(sink2.frames.size(), intact.frames.size());
}

TEST(StreamingReceiver, TightRingCapacityIsBitIdentical) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(24.0), fast_options());
  StreamScenario sc;
  sc.packets = 2;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNoise;
  const auto truth = build_stream(sim, sc);

  StreamingReceiver roomy(sim.demodulator(), options_for(truth));
  const auto want = run_stream(roomy, truth.waveform, 0);
  ASSERT_EQ(want.frames.size(), truth.frames.size());

  // Awkward capacity: the minimum plus a prime, so ring wraps land at
  // shifting offsets; pushed 3 samples at a time to force many wraps.
  auto opts = options_for(truth);
  opts.ring_capacity = roomy.min_ring_capacity() + 7;
  StreamingReceiver tight(sim.demodulator(), opts);
  const auto got = run_stream(tight, truth.waveform, 3);
  ASSERT_EQ(got.frames.size(), want.frames.size());
  for (std::size_t k = 0; k < want.frames.size(); ++k) {
    EXPECT_EQ(got.frames[k].start, want.frames[k].start);
    EXPECT_EQ(got.frames[k].bits, want.frames[k].bits);
    EXPECT_EQ(got.frames[k].det.a, want.frames[k].det.a);
    EXPECT_EQ(got.frames[k].det.normalized_residual,
              want.frames[k].det.normalized_residual);
  }
}

TEST(StreamingReceiver, TraceRoundTripDecodesIdentically) {
  const auto p = fast_params();
  const sim::LinkSimulator sim(p, p.tag_config(), fast_channel(24.0), fast_options());
  StreamScenario sc;
  sc.packets = 2;
  sc.payload_bytes = kPayloadBytes;
  sc.gap = StreamScenario::Gap::kNoise;
  const auto truth = build_stream(sim, sc);

  const std::string path = testing::TempDir() + "stream_roundtrip.csv";
  sim::write_trace_csv(path, truth.waveform);
  const auto replay = sim::read_trace_csv(path);
  std::remove(path.c_str());

  // max_digits10 precision makes the CSV round-trip lossless...
  ASSERT_EQ(replay.sample_rate_hz, truth.waveform.sample_rate_hz);
  ASSERT_EQ(replay.samples, truth.waveform.samples);

  // ...so replaying the capture through a BufferSource decodes exactly
  // like the live stream.
  StreamingReceiver live(sim.demodulator(), options_for(truth));
  const auto want = run_stream(live, truth.waveform, 0);
  ASSERT_EQ(want.frames.size(), truth.frames.size());

  BufferSource source(replay);
  StreamingReceiver rx(sim.demodulator(), options_for(truth));
  CollectSink sink;
  std::vector<sig::Complex> chunk(193);
  std::size_t n = 0;
  while ((n = source.read(chunk)) > 0)
    rx.push_samples(std::span(chunk.data(), n), sink);
  rx.flush(sink);
  ASSERT_EQ(sink.frames.size(), want.frames.size());
  for (std::size_t k = 0; k < want.frames.size(); ++k) {
    EXPECT_EQ(sink.frames[k].start, want.frames[k].start);
    EXPECT_EQ(sink.frames[k].bits, want.frames[k].bits);
  }
}

}  // namespace
}  // namespace rt::stream
