// Tests for the liquid-crystal modulator simulator: cell dynamics, modules,
// the tag array and the shift-register control chain.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "lcm/lc_cell.h"
#include "lcm/module.h"
#include "lcm/pixel.h"
#include "lcm/shift_register.h"
#include "lcm/tag_array.h"

namespace rt::lcm {
namespace {

/// Steps a cell with constant drive, returning time to cross `threshold`.
double time_to_cross(LcCell& cell, bool driven, double threshold, bool rising,
                     double max_t = 20e-3) {
  const double dt = 5e-6;
  for (double t = 0.0; t < max_t; t += dt) {
    const double c = cell.step(driven, dt);
    if (rising ? (c >= threshold) : (c <= threshold)) return t;
  }
  return max_t;
}

TEST(LcCell, ChargesFastRelaxesSlow) {
  // Asymmetric response (Fig. 3): charging finishes in well under 1 ms,
  // discharging takes several milliseconds.
  LcCell cell;
  const double t_charge = time_to_cross(cell, true, 0.95, true);
  EXPECT_LT(t_charge, rt::ms(0.8));
  EXPECT_GT(t_charge, rt::ms(0.2));

  cell.reset(1.0);
  const double t_discharge = time_to_cross(cell, false, 0.05, false);
  EXPECT_GT(t_discharge, rt::ms(2.5));
  EXPECT_LT(t_discharge, rt::ms(5.5));
}

TEST(LcCell, DischargeHasInitialPlateau) {
  // Section 2.2: ~1 ms relatively flat pulse at the start of discharge.
  LcCell cell;
  cell.reset(1.0);
  const double plateau = time_to_cross(cell, false, 0.90, false);
  EXPECT_GT(plateau, rt::ms(0.5));
  EXPECT_LT(plateau, rt::ms(1.8));
}

TEST(LcCell, StepIsSampleRateInvariant) {
  // The same physical interval must give the same state regardless of how
  // it is chopped (substepping correctness).
  LcCell a;
  LcCell b;
  a.reset(1.0);
  b.reset(1.0);
  (void)a.step(false, rt::ms(2.0));
  for (int i = 0; i < 200; ++i) (void)b.step(false, rt::ms(0.01));
  EXPECT_NEAR(a.state(), b.state(), 1e-6);
}

TEST(LcCell, HistoryDependence) {
  // Tail effect (Fig. 11a): a cell that was charged longer discharges
  // differently -- the response depends on previous bits.
  LcCell brief;
  LcCell full;
  (void)brief.step(true, rt::ms(0.3));
  (void)full.step(true, rt::ms(2.0));
  (void)brief.step(false, rt::ms(1.0));
  (void)full.step(false, rt::ms(1.0));
  EXPECT_GT(full.state(), brief.state() + 0.01);
}

TEST(LcCell, StateStaysInUnitInterval) {
  LcCell cell;
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    (void)cell.step(rng.bernoulli(), rt::ms(0.1));
    EXPECT_GE(cell.state(), 0.0);
    EXPECT_LE(cell.state(), 1.0);
  }
}

TEST(LcCell, MemoryStateTracksChargeHistory) {
  // The surface-memory state follows the alignment slowly: long-charged
  // cells hold memory after release, briefly-charged ones barely build it.
  LcCell brief;
  LcCell soaked;
  (void)brief.step(true, rt::ms(0.3));
  (void)soaked.step(true, rt::ms(10.0));
  EXPECT_GT(soaked.memory(), brief.memory() + 0.3);
  // Memory decays after release but persists past the optical discharge.
  (void)soaked.step(false, rt::ms(4.0));
  EXPECT_LT(soaked.state(), 0.1);
  EXPECT_GT(soaked.memory(), 0.2);
}

TEST(LcCell, MemorySpeedsUpRecharge) {
  // The "110" vs "010" mechanism of Fig. 11a: a recently-soaked cell
  // recharges faster than a cold one.
  LcCell cold;
  LcCell warm;
  (void)warm.step(true, rt::ms(8.0));
  (void)warm.step(false, rt::ms(4.0));
  (void)cold.step(false, rt::ms(12.0));
  const double warm_after = warm.step(true, rt::ms(0.3));
  const double cold_after = cold.step(true, rt::ms(0.3));
  EXPECT_GT(warm_after, cold_after + 0.02);
}

TEST(LcCell, RejectsBadInputs) {
  LcCell cell;
  EXPECT_THROW(cell.reset(1.5), PreconditionError);
  EXPECT_THROW((void)cell.step(true, -1.0), PreconditionError);
  EXPECT_THROW(LcCell(LcTimings{-1.0, 1.0, 1.0}), PreconditionError);
}

TEST(Pixel, BipolarContributionOnPolarizerAxis) {
  PixelParams p;
  p.polarizer_angle_rad = 0.0;
  Pixel px(p);
  // Relaxed: -1 on the real axis (90deg polarization -> e^{j180deg}).
  EXPECT_NEAR(std::abs(px.contribution() - Complex(-1.0, 0.0)), 0.0, 1e-12);
  (void)px.step(true, rt::ms(5.0));
  EXPECT_NEAR(std::abs(px.contribution() - Complex(1.0, 0.0)), 0.0, 1e-3);
}

TEST(Pixel, QuadraturePixelIsOrthogonal) {
  PixelParams pi;
  PixelParams pq;
  pq.polarizer_angle_rad = rt::deg_to_rad(45.0);
  Pixel a(pi);
  Pixel b(pq);
  // p_I(t) = j p_Q(t): identical scalar dynamics, orthogonal axes.
  const double dt = rt::ms(0.05);
  for (int i = 0; i < 100; ++i) {
    const auto ci = a.step(true, dt);
    const auto cq = b.step(true, dt);
    EXPECT_NEAR(std::abs(ci * Complex(0, 1) - cq), 0.0, 1e-12);
  }
}

TEST(Module, BinaryWeightedAreasNormalized) {
  Rng rng(1);
  Module m(4, 0.0, {}, rng);
  ASSERT_EQ(m.bits(), 4);
  EXPECT_EQ(m.max_level(), 15);
  // Areas 8:4:2:1 normalized to sum 1.
  double total = 0.0;
  for (const auto& px : m.pixels()) total += px.params().area;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(m.pixels()[0].params().area / m.pixels()[3].params().area, 8.0, 1e-12);
}

TEST(Module, SteadyStateSwingProportionalToLevel) {
  // Drive each level long enough to settle; aggregate real part must be
  // close to 2 * level / 15 - 1 (bipolar normalized PAM).
  for (const int level : {0, 1, 5, 10, 15}) {
    Rng rng(1);
    Module m(4, 0.0, {}, rng);
    m.set_level(level);
    Complex last{};
    for (int i = 0; i < 400; ++i) last = m.step(rt::ms(0.05));  // 20 ms settle
    const double expected = 2.0 * static_cast<double>(level) / 15.0 - 1.0;
    EXPECT_NEAR(last.real(), expected, 0.02) << "level " << level;
    EXPECT_NEAR(last.imag(), 0.0, 1e-9);
  }
}

TEST(Module, HeterogeneityPerturbsGains) {
  Rng rng(42);
  Heterogeneity het;
  het.gain_sigma = 0.05;
  het.angle_sigma_rad = rt::deg_to_rad(2.0);
  Module m(4, 0.0, het, rng);
  bool any_gain_off = false;
  for (const auto& px : m.pixels())
    if (std::abs(px.params().gain - 1.0) > 1e-4) any_gain_off = true;
  EXPECT_TRUE(any_gain_off);
}

TEST(Module, LevelValidation) {
  Rng rng(1);
  Module m(2, 0.0, {}, rng);
  EXPECT_THROW(m.set_level(4), PreconditionError);
  EXPECT_THROW(m.set_level(-1), PreconditionError);
  EXPECT_THROW(Module(0, 0.0, {}, rng), PreconditionError);
}

TEST(TagArray, SinglePulseShape) {
  // One firing of one module: the waveform must rise within ~tau_1 of the
  // firing and return near baseline ~4 ms later (the DSM pulse p(t)).
  TagConfig cfg;
  cfg.dsm_order = 2;
  cfg.bits_per_axis = 1;
  TagArray tag(cfg);
  const std::vector<Firing> schedule = {{rt::ms(1.0), 0, 1, -1}};
  const double fs = 40e3;
  auto w = tag.synthesize(schedule, fs, rt::ms(10.0));
  // Baseline: all relaxed pixels. I group: 2 modules * (-1) = -2 real;
  // Q group: 2 modules * (-j) => imag -2.
  EXPECT_NEAR(w[10].real(), -2.0, 0.05);
  EXPECT_NEAR(w[10].imag(), -2.0, 0.05);
  // Peak shortly after firing: fired module swings to +1 => real sum ~0.
  const auto peak_idx = w.index_at(rt::ms(1.0) + cfg.charge_s);
  EXPECT_GT(w[peak_idx].real(), -0.35);
  // Q axis untouched (level_q = -1).
  EXPECT_NEAR(w[peak_idx].imag(), -2.0, 0.05);
  // Recovered by 6 ms after firing.
  const auto tail_idx = w.index_at(rt::ms(7.0));
  EXPECT_NEAR(w[tail_idx].real(), -2.0, 0.1);
}

TEST(TagArray, PulseSuperpositionIsLinear)
{
  // Two modules fired at different times: the waveform equals the sum of
  // the individual responses (minus one extra copy of the static bias) --
  // the superposition property DSM relies on (section 4.1).
  TagConfig cfg;
  cfg.dsm_order = 2;
  cfg.bits_per_axis = 1;
  const double fs = 40e3;
  const double dur = rt::ms(12.0);

  TagArray both(cfg);
  auto w_both = both.synthesize(
      std::vector<Firing>{{rt::ms(1.0), 0, 1, -1}, {rt::ms(2.5), 1, 1, -1}}, fs, dur);

  TagArray first(cfg);
  auto w_first = first.synthesize(std::vector<Firing>{{rt::ms(1.0), 0, 1, -1}}, fs, dur);
  TagArray second(cfg);
  auto w_second = second.synthesize(std::vector<Firing>{{rt::ms(2.5), 1, 1, -1}}, fs, dur);

  TagArray idle(cfg);
  auto w_idle = idle.synthesize(std::vector<Firing>{}, fs, dur);

  for (std::size_t i = 0; i < w_both.size(); ++i) {
    const auto expected = w_first[i] + w_second[i] - w_idle[i];
    EXPECT_NEAR(std::abs(w_both[i] - expected), 0.0, 1e-9) << i;
  }
}

TEST(TagArray, QuadratureFiringLandsOnImaginaryAxis) {
  TagConfig cfg;
  cfg.dsm_order = 1;
  cfg.bits_per_axis = 1;
  TagArray tag(cfg);
  auto w = tag.synthesize(std::vector<Firing>{{rt::ms(0.5), 0, -1, 1}}, 40e3, rt::ms(6.0));
  const auto idx = w.index_at(rt::ms(1.0));
  EXPECT_GT(w[idx].imag(), -0.5);   // Q pixel swung up
  EXPECT_NEAR(w[idx].real(), -1.0, 0.05);  // I pixel untouched
}

TEST(TagArray, EnergyIndependentOfDataRateParameterization) {
  // Section 7.2.2 (power): 4 and 8 Kbps share the same DSM symbol length
  // and thus the same drive energy per unit time. Same schedule of firings
  // with the same levels => same energy regardless of PQAM order mapping.
  TagConfig cfg;
  TagArray tag(cfg);
  std::vector<Firing> schedule;
  for (int n = 0; n < 16; ++n)
    schedule.push_back({static_cast<double>(n) * cfg.slot_s, n % cfg.dsm_order, 3, 3});
  const double e = tag.drive_energy(schedule);
  EXPECT_GT(e, 0.0);
  // Doubling levels-per-axis resolution with the same normalized drive
  // pattern leaves energy unchanged.
  TagConfig cfg2 = cfg;
  cfg2.bits_per_axis = 1;
  TagArray tag2(cfg2);
  std::vector<Firing> schedule2;
  for (int n = 0; n < 16; ++n)
    schedule2.push_back({static_cast<double>(n) * cfg2.slot_s, n % cfg2.dsm_order, 1, 1});
  EXPECT_NEAR(tag2.drive_energy(schedule2), e, 1e-12);
}

TEST(TagArray, ValidatesConfigAndSchedule) {
  TagConfig bad;
  bad.dsm_order = 0;
  EXPECT_THROW(TagArray{bad}, PreconditionError);
  TagConfig cfg;
  TagArray tag(cfg);
  EXPECT_THROW((void)tag.synthesize(std::vector<Firing>{{0.0, 99, 1, 1}}, 40e3, rt::ms(1.0)),
               PreconditionError);
  // Unsorted schedule rejected.
  EXPECT_THROW((void)tag.synthesize(
                   std::vector<Firing>{{rt::ms(2.0), 0, 1, 1}, {rt::ms(1.0), 1, 1, 1}}, 40e3,
                   rt::ms(5.0)),
               PreconditionError);
}

TEST(ShiftRegister, ClockAndLatchSemantics) {
  ShiftRegisterChain chain(1);
  chain.clock_in(true);
  chain.clock_in(false);
  chain.clock_in(true);
  // Nothing on the outputs until RCLK.
  for (const auto o : chain.outputs()) EXPECT_EQ(o, 0);
  chain.latch();
  // Last bit clocked sits at output 0.
  EXPECT_EQ(chain.outputs()[0], 1);
  EXPECT_EQ(chain.outputs()[1], 0);
  EXPECT_EQ(chain.outputs()[2], 1);
}

TEST(ShiftRegister, ClearShiftKeepsLatches) {
  ShiftRegisterChain chain(1);
  std::vector<std::uint8_t> frame(8, 1);
  chain.spi_write(frame);
  chain.clear_shift();
  for (const auto o : chain.outputs()) EXPECT_EQ(o, 1);  // latches survive SRCLR
  chain.latch();
  for (const auto o : chain.outputs()) EXPECT_EQ(o, 0);  // now the cleared shift reg
}

TEST(ShiftRegister, DaisyChainSpiFrameDrivesPixelsInOrder) {
  // 64 outputs = 8 registers, as in the prototype (4 LCMs x 16 pixels).
  ShiftRegisterChain chain(8);
  const std::vector<int> levels = {0x8, 0x4, 0x2, 0x1, 0xF, 0x0, 0xA, 0x5,
                                   0x3, 0xC, 0x6, 0x9, 0x7, 0xE, 0xB, 0xD};
  const auto frame = levels_to_spi_frame(levels, 4);
  ASSERT_EQ(frame.size(), 64u);
  chain.spi_write(frame);
  // Output block i must equal the binary decomposition of levels[i],
  // LSB-first within the block.
  for (std::size_t m = 0; m < levels.size(); ++m)
    for (int b = 0; b < 4; ++b)
      EXPECT_EQ(chain.outputs()[m * 4 + static_cast<std::size_t>(b)], (levels[m] >> b) & 1)
          << "module " << m << " bit " << b;
}

TEST(ShiftRegister, SpiFrameSizeValidation) {
  ShiftRegisterChain chain(2);
  const std::vector<std::uint8_t> wrong(8, 0);
  EXPECT_THROW(chain.spi_write(wrong), PreconditionError);
  EXPECT_THROW((void)levels_to_spi_frame(std::vector<int>{16}, 4), PreconditionError);
}

}  // namespace
}  // namespace rt::lcm
