// Tests for the runtime layer: the thread pool, the deterministic
// parallel sweep engine, counter-based seed splitting, LinkStats merging
// and the bench formatting helpers they feed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "sim/link_sim.h"

namespace rt::runtime {
namespace {

// ---------------------------------------------------------------------------
// split_seed

TEST(SplitSeedTest, IsAPureFunction) {
  EXPECT_EQ(split_seed(42, 3, 1), split_seed(42, 3, 1));
  EXPECT_EQ(split_seed(0, 0, 0), split_seed(0, 0, 0));
}

TEST(SplitSeedTest, EveryArgumentChangesTheStream) {
  const std::uint64_t base = split_seed(42, 3, 1);
  EXPECT_NE(base, split_seed(43, 3, 1));
  EXPECT_NE(base, split_seed(42, 4, 1));
  EXPECT_NE(base, split_seed(42, 3, 2));
  // Swapping the two indices must not collide either.
  EXPECT_NE(split_seed(42, 1, 3), split_seed(42, 3, 1));
}

TEST(SplitSeedTest, NoCollisionsOverAPacketGrid) {
  // 4 seeds x 256 packets x 3 streams -- the shape a sweep actually uses.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xffffffffffffffffULL})
    for (std::uint64_t packet = 0; packet < 256; ++packet)
      for (std::uint64_t stream = 0; stream < 3; ++stream)
        seen.insert(split_seed(seed, packet, stream));
  EXPECT_EQ(seen.size(), 4u * 256u * 3u);
}

// ---------------------------------------------------------------------------
// LinkStats

TEST(LinkStatsTest, MergeSumsEveryField) {
  sim::LinkStats a{.packets = 3, .preamble_failures = 1, .bit_errors = 10, .total_bits = 100};
  sim::LinkStats b{.packets = 5, .preamble_failures = 0, .bit_errors = 2, .total_bits = 300};
  a.merge(b);
  EXPECT_EQ(a.packets, 8);
  EXPECT_EQ(a.preamble_failures, 1);
  EXPECT_EQ(a.bit_errors, 12u);
  EXPECT_EQ(a.total_bits, 400u);
}

TEST(LinkStatsTest, AnyPartitionMergesToTheWhole) {
  // 16 per-packet stat records with varied contents.
  std::vector<sim::LinkStats> parts;
  sim::LinkStats whole;
  for (int i = 0; i < 16; ++i) {
    sim::LinkStats s{.packets = 1,
                     .preamble_failures = i % 5 == 0 ? 1 : 0,
                     .bit_errors = static_cast<std::size_t>(i * 3),
                     .total_bits = 256};
    whole.merge(s);
    parts.push_back(s);
  }
  // Try several partitions (every k-th record into bucket k mod n).
  for (int buckets : {1, 2, 3, 5, 16}) {
    std::vector<sim::LinkStats> acc(static_cast<std::size_t>(buckets));
    for (std::size_t i = 0; i < parts.size(); ++i) acc[i % buckets].merge(parts[i]);
    sim::LinkStats merged;
    // Merge the buckets in reverse order to also exercise commutativity.
    for (auto it = acc.rbegin(); it != acc.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(merged.packets, whole.packets);
    EXPECT_EQ(merged.preamble_failures, whole.preamble_failures);
    EXPECT_EQ(merged.bit_errors, whole.bit_errors);
    EXPECT_EQ(merged.total_bits, whole.total_bits);
  }
}

TEST(LinkStatsTest, RatiosAreSafeOnEmptyStats) {
  const sim::LinkStats empty;
  EXPECT_EQ(empty.ber(), 0.0);
  EXPECT_EQ(empty.packet_loss(), 0.0);
  sim::LinkStats all_lost{.packets = 4, .preamble_failures = 4, .bit_errors = 0, .total_bits = 0};
  EXPECT_EQ(all_lost.ber(), 0.0);
  EXPECT_EQ(all_lost.packet_loss(), 1.0);
}

TEST(BenchFormatTest, BerStrHandlesEmptyFloorAndMeasured) {
  // Regression: an all-preambles-lost point used to print "inf%".
  sim::LinkStats none;
  EXPECT_EQ(bench::ber_str(none), "n/a");
  sim::LinkStats clean{.packets = 1, .preamble_failures = 0, .bit_errors = 0, .total_bits = 1000};
  EXPECT_EQ(bench::ber_str(clean), "<0.1000%");
  sim::LinkStats errs{.packets = 1, .preamble_failures = 0, .bit_errors = 5, .total_bits = 1000};
  EXPECT_EQ(bench::ber_str(errs), "0.5000%");
  EXPECT_EQ(bench::ber_str_counts(0, 0), "n/a");
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsSubmittedWorkAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving work.
  EXPECT_EQ(pool.submit([] { return 9; }).get(), 9);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      auto f = pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
      (void)f;  // futures dropped: destruction must still run the work
    }
  }  // ~ThreadPool drains the queue before joining
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // A running task may enqueue follow-up work on the same pool -- even on a
  // single worker -- because workers never hold the queue lock while
  // executing and the outer task does not block on the inner future.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] { return pool.submit([] { return 21; }); });
  auto inner = outer.get();
  EXPECT_EQ(inner.get(), 21);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsFloorsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

// ---------------------------------------------------------------------------
// Deterministic parallel sweep

// Small-but-real link configuration so the determinism tests run the full
// modulate -> channel -> demodulate path in a few hundred milliseconds.
phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

std::vector<SweepPoint> fast_points() {
  const auto params = fast_params();
  const auto tag = params.tag_config();
  const auto offline = sim::train_offline_model(params, tag);
  std::vector<SweepPoint> points;
  for (const double snr : {14.0, 30.0}) {
    SweepPoint pt;
    pt.params = params;
    pt.tag = tag;
    pt.channel.snr_override_db = snr;
    pt.channel.noise_seed = static_cast<std::uint64_t>(snr);
    pt.sim.seed = 7;
    pt.sim.offline_yaws_deg = {0.0};
    pt.sim.shared_offline_model = offline;
    points.push_back(pt);
  }
  return points;
}

void expect_same_stats(const sim::LinkStats& a, const sim::LinkStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.preamble_failures, b.preamble_failures);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.total_bits, b.total_bits);
}

TEST(ParallelSweepTest, MatchesSerialRunBitForBit) {
  const auto points = fast_points();
  SweepOptions so;
  so.packets = 6;
  so.payload_bytes = 16;

  // Serial reference: the plain LinkSimulator::run loop, no pool involved.
  std::vector<sim::LinkStats> serial;
  for (const auto& pt : points) {
    const sim::LinkSimulator link(pt.params, pt.tag, pt.channel, pt.sim);
    serial.push_back(link.run(so.packets, so.payload_bytes));
  }

  for (const unsigned threads : {1u, 4u}) {
    so.threads = threads;
    const auto sweep = parallel_sweep(points, so);
    ASSERT_EQ(sweep.stats.size(), points.size());
    EXPECT_EQ(sweep.threads, threads);
    for (std::size_t i = 0; i < points.size(); ++i) expect_same_stats(serial[i], sweep.stats[i]);
  }
}

TEST(ParallelSweepTest, RepeatedRunsAreIdentical) {
  const auto points = fast_points();
  SweepOptions so;
  so.packets = 5;
  so.payload_bytes = 16;
  so.threads = 4;
  const auto first = parallel_sweep(points, so);
  const auto second = parallel_sweep(points, so);
  ASSERT_EQ(first.stats.size(), second.stats.size());
  for (std::size_t i = 0; i < first.stats.size(); ++i)
    expect_same_stats(first.stats[i], second.stats[i]);
}

TEST(ParallelSweepTest, BatchGrainDoesNotChangeResults) {
  const auto points = fast_points();
  SweepOptions so;
  so.packets = 6;
  so.payload_bytes = 16;
  so.threads = 3;
  so.batch_packets = 1;
  const auto fine = parallel_sweep(points, so);
  so.batch_packets = 4;  // uneven final batch on purpose
  const auto coarse = parallel_sweep(points, so);
  for (std::size_t i = 0; i < points.size(); ++i)
    expect_same_stats(fine.stats[i], coarse.stats[i]);
}

TEST(ParallelSweepTest, ReusesACallerOwnedPool) {
  const auto points = fast_points();
  SweepOptions so;
  so.packets = 4;
  so.payload_bytes = 16;
  ThreadPool pool(2);
  const auto a = parallel_sweep(points, so, pool);
  const auto b = parallel_sweep(points, so, pool);
  EXPECT_EQ(a.threads, 2u);
  for (std::size_t i = 0; i < points.size(); ++i) expect_same_stats(a.stats[i], b.stats[i]);
}

TEST(ParallelSweepTest, EmptyPointListIsFine) {
  const auto sweep = parallel_sweep({}, SweepOptions{});
  EXPECT_TRUE(sweep.stats.empty());
}

TEST(RunPacketTest, IsIndependentOfCallOrder) {
  const auto points = fast_points();
  const auto& pt = points[0];
  const sim::LinkSimulator link(pt.params, pt.tag, pt.channel, pt.sim);
  const auto forward0 = link.run_packet(0, 16);
  const auto forward1 = link.run_packet(1, 16);
  // Same indices queried again, in reverse order, on the same simulator.
  const auto back1 = link.run_packet(1, 16);
  const auto back0 = link.run_packet(0, 16);
  EXPECT_EQ(forward0.bit_errors, back0.bit_errors);
  EXPECT_EQ(forward0.received_bits, back0.received_bits);
  EXPECT_EQ(forward1.bit_errors, back1.bit_errors);
  EXPECT_EQ(forward1.received_bits, back1.received_bits);
  // Distinct packet indices see distinct payload/noise draws.
  EXPECT_NE(forward0.received_bits, forward1.received_bits);
}

}  // namespace
}  // namespace rt::runtime
