// Tests for the closed rate-adaptation loop: the RateController's
// EWMA/hysteresis behaviour, the receiver-side SNR estimate feeding it,
// and the end-to-end study's determinism (serial == parallel) -- the
// properties bench_fig18c's acceptance criteria ride on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mac/closed_loop.h"
#include "mac/rate_controller.h"
#include "mac/rate_table.h"
#include "signal/snr_estimator.h"
#include "sim/link_sim.h"

namespace rt::mac {
namespace {

TEST(RateController, StartsAtMostRobustOption) {
  const auto table = RateTable::paper_default();
  const RateController ctl(table);
  EXPECT_EQ(ctl.current_index(), table.most_robust_index());
  EXPECT_EQ(ctl.current_option().name, "1kbps+RS(255,127)");
}

TEST(RateController, StepsUpOnSustainedHighSnr) {
  const auto table = RateTable::paper_default();
  RateController ctl(table);
  for (int i = 0; i < 30; ++i) ctl.update(60.0);
  EXPECT_NEAR(ctl.smoothed_snr_db(), 60.0, 0.5);
  EXPECT_NEAR(ctl.current_option().raw_rate_bps, 32000.0, 1.0);
}

TEST(RateController, StepsDownWhenSnrCollapses) {
  const auto table = RateTable::paper_default();
  RateController ctl(table);
  for (int i = 0; i < 30; ++i) ctl.update(60.0);
  const auto fast = ctl.current_index();
  for (int i = 0; i < 60; ++i) ctl.update(5.0);
  EXPECT_NE(ctl.current_index(), fast);
  EXPECT_NEAR(ctl.current_option().raw_rate_bps, 1000.0, 1.0);
}

TEST(RateController, HysteresisPreventsFlappingAtThreshold) {
  const auto table = RateTable::paper_default();
  RateControllerConfig cfg;
  cfg.ewma_alpha = 1.0;  // no smoothing: hysteresis alone must hold the line
  cfg.hysteresis_db = 1.5;
  RateController ctl(table);
  RateController raw(table, cfg);
  // Oscillate +-1 dB around the 16k+RS(255,223) threshold (31.5 dB): a
  // memoryless selector would flap every sample; the controller must not.
  for (int i = 0; i < 100; ++i) {
    const double snr = 31.5 + ((i % 2 == 0) ? 1.0 : -1.0);
    raw.update(snr);
    ctl.update(snr);
  }
  // After the initial ramp the assignment must hold steady: at most the
  // switches needed to climb from the most-robust start, never dozens.
  EXPECT_LE(ctl.switches(), 3u);
  EXPECT_LE(raw.switches(), 3u);
  // And the memoryless table WOULD flap, proving the hysteresis is doing
  // the work rather than the oscillation being harmless.
  std::size_t table_flaps = 0;
  std::size_t prev = table.select_index(32.5);
  for (int i = 1; i < 100; ++i) {
    const std::size_t cur = table.select_index(31.5 + ((i % 2 == 0) ? 1.0 : -1.0));
    if (cur != prev) ++table_flaps;
    prev = cur;
  }
  EXPECT_GT(table_flaps, 50u);
}

TEST(RateController, EwmaSmoothsSingleOutliers) {
  const auto table = RateTable::paper_default();
  RateControllerConfig cfg;
  cfg.ewma_alpha = 0.25;
  RateController ctl(table, cfg);
  for (int i = 0; i < 20; ++i) ctl.update(40.0);
  const auto settled = ctl.current_index();
  ctl.update(15.0);  // one bad estimate must not tank the assignment
  EXPECT_EQ(ctl.current_index(), settled);
  EXPECT_GT(ctl.smoothed_snr_db(), 25.0);
}

TEST(RateController, RejectsBadConfig) {
  const auto table = RateTable::paper_default();
  RateControllerConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(RateController(table, bad), PreconditionError);
  bad.ewma_alpha = 0.5;
  bad.hysteresis_db = -1.0;
  EXPECT_THROW(RateController(table, bad), PreconditionError);
}

TEST(SnrEstimateFeed, TracksChannelSnrThroughRealPhy) {
  // The estimate the loop runs on: run the probe config at a known SNR
  // and check the per-packet estimates off the fitted preamble.
  const auto p = probe_params();
  sim::ChannelConfig ch;
  ch.snr_override_db = 30.0;
  ch.noise_seed = 5;
  sim::SimOptions so;
  so.seed = 17;
  so.offline_yaws_deg = {0.0};
  const sim::LinkSimulator sim(p, p.tag_config(), ch, so);
  sim::PacketWorkspace ws;
  double sum = 0.0;
  int found = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto out = sim.run_packet(i, 8, ws);
    ASSERT_TRUE(out.preamble_found);
    EXPECT_TRUE(std::isfinite(out.snr_estimate_db));
    sum += out.snr_estimate_db;
    ++found;
  }
  EXPECT_NEAR(sum / found, 30.0, 3.0) << "preamble SNR estimate should track the channel";
}

TEST(SnrEstimateFeed, SelectionAgreementAboveAndBelowThresholds) {
  // Estimated-vs-oracle agreement: away from rate thresholds a +-2 dB
  // estimate error cannot change the selected option.
  const auto table = RateTable::paper_default();
  for (const double true_snr : {10.0, 22.5, 37.0, 60.0}) {
    const auto oracle = table.select_index(true_snr);
    for (const double err : {-2.0, -1.0, 1.0, 2.0})
      EXPECT_EQ(table.select_index(true_snr + err), oracle)
          << "at " << true_snr << " dB with error " << err;
  }
}

TEST(SnrEstimator, ZeroResidualYieldsCappedFiniteEstimate) {
  // Regression: a clean (noiseless) channel used to abort on the zero
  // residual; the closed loop needs the capped estimate instead.
  std::vector<sig::Complex> ref(32, sig::Complex{1.0, 0.5});
  const auto est = sig::estimate_snr(ref, ref);  // received == reference
  EXPECT_TRUE(std::isfinite(est.snr_db));
  EXPECT_EQ(est.snr_db, sig::kSnrEstimateCapDb);
  std::vector<sig::Complex> flat(32, sig::Complex{0.7, 0.0});
  const auto blind = sig::estimate_snr_blind(flat);  // zero variance
  EXPECT_TRUE(std::isfinite(blind.snr_db));
  EXPECT_EQ(blind.snr_db, sig::kSnrEstimateCapDb);
  // All-zero signal: capped on the other side, still finite.
  std::vector<sig::Complex> zero(32, sig::Complex{});
  const auto dead = sig::estimate_snr(zero, zero);
  EXPECT_EQ(dead.snr_db, -sig::kSnrEstimateCapDb);
}

ClosedLoopConfig small_config() {
  ClosedLoopConfig cfg;
  cfg.distances_m = {1.5, 3.0, 4.3};
  cfg.probe_packets = 6;
  cfg.seed = 99;
  return cfg;
}

TEST(ClosedLoopStudy, SerialEqualsParallelBitIdentical) {
  const auto table = RateTable::paper_default();
  const GoodputModel model;
  auto cfg = small_config();
  cfg.threads = 1;
  const auto serial = run_closed_loop_study(table, model, cfg);
  cfg.threads = 4;
  const auto parallel = run_closed_loop_study(table, model, cfg);
  ASSERT_TRUE(serial.identical(parallel))
      << "closed-loop study must be bit-identical at any thread count";
  // And repeatable: a second serial run reproduces everything.
  cfg.threads = 1;
  const auto again = run_closed_loop_study(table, model, cfg);
  EXPECT_TRUE(serial.identical(again));
}

TEST(ClosedLoopStudy, EstimatedLoopBeatsBaselineEverywhere) {
  const auto table = RateTable::paper_default();
  const GoodputModel model;
  const auto r = run_closed_loop_study(table, model, small_config());
  ASSERT_EQ(r.points.size(), 3u);
  for (const auto& pt : r.points) {
    EXPECT_GE(pt.goodput_estimated_bps, pt.goodput_baseline_bps)
        << "estimated loop must not lose to the fixed rate at " << pt.distance_m << " m";
    EXPECT_GT(pt.goodput_oracle_bps, 0.0);
    EXPECT_EQ(pt.probes_lost, 0) << "probe config must decode across the study span";
    EXPECT_TRUE(std::isfinite(pt.mean_estimate_db));
    EXPECT_NEAR(pt.mean_estimate_db, pt.snr_true_db, 4.0);
  }
  // At close range the estimated loop must actually adapt up, far above
  // the most-robust starting assignment.
  EXPECT_GT(r.points.front().goodput_estimated_bps,
            4.0 * r.points.front().goodput_baseline_bps);
}

}  // namespace
}  // namespace rt::mac
