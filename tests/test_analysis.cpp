// Tests for the section-5 analysis framework: LCM characterization tables,
// code-matrix emulation, minimum distance, emulation error and the
// parameter optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/emulation_error.h"
#include "analysis/emulator.h"
#include "analysis/min_distance.h"
#include "analysis/optimizer.h"
#include "analysis/scheme.h"
#include "common/rng.h"
#include "common/units.h"
#include "lcm/lc_cell.h"

namespace rt::analysis {
namespace {

constexpr double kFs = 40e3;
constexpr double kSlot = 0.5e-3;

const LcmTable& small_table() {
  static const LcmTable table = characterize_lcm(lcm::LcTimings{}, kSlot, kFs, 8);
  return table;
}

TEST(LcmTable, CharacterizationCoversAllWindows) {
  const auto& t = small_table();
  EXPECT_EQ(t.order(), 8);
  EXPECT_EQ(t.slot_samples(), 20u);
  // All-zero window: steady relaxed response, constant -1.
  const auto zero = t.response(0);
  for (const auto v : zero) EXPECT_NEAR(v, -1.0, 0.02);
  // All-ones window: fully charged, constant +1.
  const auto ones = t.response((1u << 8) - 1);
  EXPECT_NEAR(ones.back(), 1.0, 0.05);
}

TEST(LcmTable, CurrentBitDominatesResponse) {
  const auto& t = small_table();
  // Window ...0 with current bit 1 ramps up; current bit 0 after long
  // charge history decays.
  const auto rise = t.response(1);  // history zeros, current driven
  EXPECT_GT(rise.back(), rise.front());
  const auto fall = t.response((1u << 8) - 2);  // all driven except current
  EXPECT_LE(fall.back(), fall.front() + 1e-9);
}

TEST(Emulator, ApproximatesDirectCellSimulation) {
  // Table-driven emulation approximates stepping the ODE cell directly.
  // It is NOT exact: the table's V-slot memory misses older drive history
  // (exactly the finite-memory error the paper's Tab. 2 quantifies -- 21%
  // worst case at V=8), so we bound the RMS tightly and the worst sample
  // loosely.
  const auto& t = small_table();
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 0, 0, 1, 0};
  CodeMatrix cm;
  cm.drive = linalg::RealMatrix(1, bits.size());
  cm.gains = {Complex(1.0, 0.0)};
  for (std::size_t j = 0; j < bits.size(); ++j) cm.drive(0, j) = bits[j];
  const auto emu = emulate(t, cm, kFs);

  lcm::LcCell cell;
  const double dt = 1.0 / kFs;
  double max_err = 0.0;
  double sq = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < bits.size(); ++j)
    for (std::size_t k = 0; k < t.slot_samples(); ++k) {
      const double direct = 2.0 * cell.step(bits[j] != 0, dt) - 1.0;
      const double err = std::abs(direct - emu[j * t.slot_samples() + k].real());
      max_err = std::max(max_err, err);
      sq += err * err;
      ++n;
    }
  EXPECT_LT(std::sqrt(sq / static_cast<double>(n)), 0.08);
  EXPECT_LT(max_err, 0.4);  // worst window, paper-consistent finite-V error
}

TEST(Emulator, GainsApplyComplexAxes) {
  const auto& t = small_table();
  CodeMatrix cm;
  cm.drive = linalg::RealMatrix(2, 4);
  cm.drive(0, 1) = 1.0;
  cm.drive(1, 1) = 1.0;
  cm.gains = {Complex(1.0, 0.0), Complex(0.0, 0.5)};
  const auto w = emulate(t, cm, kFs);
  // Imag part must be exactly half the (pixel-0 minus baseline... both
  // pixels share dynamics, so imag = 0.5 * real contribution of pixel 0).
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(w[i].imag(), 0.5 * w[i].real(), 1e-12);
}

TEST(Emulator, RejectsNonBinaryDrive) {
  CodeMatrix cm;
  cm.drive = linalg::RealMatrix(1, 2);
  cm.drive(0, 0) = 0.5;
  cm.gains = {Complex(1.0, 0.0)};
  EXPECT_THROW((void)emulate(small_table(), cm, kFs), PreconditionError);
}

TEST(EmulationError, DecreasesWithTableOrder) {
  // Tab. 2 behaviour: higher V approximates the LCM better.
  const auto ref = characterize_lcm(lcm::LcTimings{}, kSlot, kFs, 12);
  EmulationErrorOptions opt;
  opt.sequences = 16;
  opt.sequence_slots = 48;
  double prev_avg = 1e9;
  for (const int v : {2, 4, 6, 8}) {
    const auto t = characterize_lcm(lcm::LcTimings{}, kSlot, kFs, v);
    const auto e = emulation_error(t, ref, kFs, opt);
    EXPECT_LT(e.avg_rel_error, prev_avg + 1e-6) << "V=" << v;
    EXPECT_LE(e.avg_rel_error, e.max_rel_error);
    prev_avg = e.avg_rel_error;
  }
  // And with enough memory the error becomes small.
  const auto t8 = characterize_lcm(lcm::LcTimings{}, kSlot, kFs, 8);
  EXPECT_LT(emulation_error(t8, ref, kFs, opt).avg_rel_error, 0.05);
}

TEST(Scheme, OokCodeMatrixShape) {
  const OokScheme ook(4, kSlot, 8);
  EXPECT_EQ(ook.data_bits(), 4);
  EXPECT_NEAR(ook.data_rate_bps(), 250.0, 1e-9);  // 1 bit / 4 ms: sub-Kbps baseline
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1};
  const auto cm = ook.encode(bits);
  EXPECT_EQ(cm.pixels(), 1u);
  EXPECT_DOUBLE_EQ(cm.drive(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm.drive(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(cm.drive(0, 16), 1.0);
}

TEST(Scheme, DsmPqamRateMatchesPaperOperatingPoints) {
  // 8 Kbps: L=8, 16-PQAM, T = 0.5 ms.
  const DsmPqamScheme s8(8, 2, kSlot, 1);
  EXPECT_NEAR(s8.data_rate_bps(), 8000.0, 1e-9);
  // 1 Kbps: L=8, 4-PQAM, T = 2 ms (4 grid slots).
  const DsmPqamScheme s1(8, 1, kSlot, 4);
  EXPECT_NEAR(s1.data_rate_bps(), 1000.0, 1e-9);
  // 32 Kbps: L=16, 256-PQAM, T = 0.25 ms -- needs a 0.25 ms grid.
  const DsmPqamScheme s32(16, 4, 0.25e-3, 1);
  EXPECT_NEAR(s32.data_rate_bps(), 32000.0, 1e-9);
}

TEST(Scheme, DsmPqamEncodePlacesBinaryWeightedPixels) {
  const DsmPqamScheme s(2, 2, kSlot, 1, true, 2);
  Rng rng(3);
  const auto bits = rng.bits(static_cast<std::size_t>(s.data_bits()));
  const auto cm = s.encode(bits);
  EXPECT_EQ(cm.pixels(), 8u);  // 2 groups x 2 modules x 2 weight pixels
  // Gains: I pixels real, Q pixels imaginary, weights 2/3 and 1/3.
  EXPECT_NEAR(cm.gains[0].real(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.gains[1].real(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.gains[4].imag(), 2.0 / 3.0, 1e-12);
  cm.validate();
}

TEST(MinDistance, HigherOrderPqamReducesDistance) {
  // At the same symbol timing, packing more levels into the same amplitude
  // range must shrink the minimum distance (higher SNR requirement).
  const auto& t = small_table();
  MinDistanceOptions opt;
  opt.exhaustive_bit_limit = 8;
  opt.random_words = 4;
  const DsmPqamScheme coarse(2, 1, kSlot, 4, true, 2);  // 4-PQAM
  const DsmPqamScheme fine(2, 2, kSlot, 4, true, 2);    // 16-PQAM
  const auto d_coarse = min_distance(t, coarse, kFs, opt);
  const auto d_fine = min_distance(t, fine, kFs, opt);
  EXPECT_GT(d_coarse.d, d_fine.d);
  EXPECT_GT(relative_threshold_db(d_fine.d, d_coarse.d), 3.0);
}

TEST(MinDistance, SlowerRateIncreasesDistance) {
  const auto& t = small_table();
  MinDistanceOptions opt;
  opt.exhaustive_bit_limit = 4;
  const DsmPqamScheme fast(2, 1, kSlot, 1, true, 1);  // T = 0.5 ms
  const DsmPqamScheme slow(2, 1, kSlot, 4, true, 1);  // T = 2 ms
  EXPECT_GT(min_distance(t, slow, kFs, opt).d, min_distance(t, fast, kFs, opt).d);
}

TEST(MinDistance, NeighbourSearchAgreesWithExhaustiveOnSmallScheme) {
  const auto& t = small_table();
  const DsmPqamScheme s(2, 1, kSlot, 2, true, 2);  // 4 bits
  MinDistanceOptions exhaustive;
  exhaustive.exhaustive_bit_limit = 8;
  MinDistanceOptions neighbour;
  neighbour.exhaustive_bit_limit = 0;
  neighbour.random_words = 12;
  const auto de = min_distance(t, s, kFs, exhaustive);
  const auto dn = min_distance(t, s, kFs, neighbour);
  // Neighbour search is an upper bound that should be tight here.
  EXPECT_GE(dn.d, de.d - 1e-12);
  EXPECT_LT(dn.d, de.d * 1.5);
}

TEST(Optimizer, FindsFeasibleGridAndBestPoint) {
  const auto& t = small_table();
  OptimizerOptions opt;
  opt.dsm_orders = {4, 8};
  opt.bits_per_axis = {1, 2};
  opt.distance.exhaustive_bit_limit = 0;
  opt.distance.random_words = 2;
  opt.payload_slots = 4;
  const auto res = optimize_parameters(t, 4000.0, opt);
  ASSERT_TRUE(res.best.has_value());
  EXPECT_FALSE(res.grid.empty());
  for (const auto& pt : res.grid) {
    // Every grid point achieves the target rate.
    const double rate = 2.0 * pt.bits_per_axis / pt.slot_s;
    EXPECT_NEAR(rate, 4000.0, 40.0);
    EXPECT_GE(pt.threshold_db_rel, -1e-9);
  }
  EXPECT_NEAR(res.best->threshold_db_rel, 0.0, 1e-9);
}

TEST(Optimizer, LowerRateAchievesBetterBestDistance) {
  const auto& t = small_table();
  OptimizerOptions opt;
  opt.dsm_orders = {8};
  opt.bits_per_axis = {1};
  opt.distance.exhaustive_bit_limit = 0;
  opt.distance.random_words = 2;
  opt.payload_slots = 4;
  const auto r1 = optimize_parameters(t, 1000.0, opt);
  const auto r4 = optimize_parameters(t, 4000.0, opt);
  ASSERT_TRUE(r1.best && r4.best);
  EXPECT_GT(r1.best->d, r4.best->d);
}

}  // namespace
}  // namespace rt::analysis
