// Unit tests for src/common: error handling, narrowing, RNG, units, bit IO.
#include <gtest/gtest.h>

#include "common/bitio.h"
#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"
#include "common/units.h"

namespace rt {
namespace {

TEST(Error, EnsurePassesOnTrue) { EXPECT_NO_THROW(RT_ENSURE(1 + 1 == 2)); }

TEST(Error, EnsureThrowsWithExpressionText) {
  try {
    RT_ENSURE(2 > 3, "two is not bigger");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("two is not bigger"), std::string::npos);
  }
}

TEST(Narrow, RoundTripOk) {
  EXPECT_EQ(narrow<std::uint8_t>(200), 200);
  EXPECT_EQ(narrow<int>(123.0), 123);
}

TEST(Narrow, LossyThrows) {
  EXPECT_THROW(static_cast<void>(narrow<std::uint8_t>(300)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<std::uint8_t>(-1)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<int>(1.5)), RuntimeError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  // Child stream differs from continuing the parent.
  Rng b(7);
  (void)b.fork();
  EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(1);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BitsAreBalanced) {
  Rng rng(3);
  const auto bits = rng.bits(10000);
  std::size_t ones = 0;
  for (const auto b : bits) ones += b;
  EXPECT_NEAR(static_cast<double>(ones), 5000.0, 300.0);
}

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(from_db(to_db(123.0)), 123.0, 1e-9);
  EXPECT_DOUBLE_EQ(to_db(10.0), 10.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
  EXPECT_DOUBLE_EQ(amplitude_to_db(10.0), 20.0);
}

TEST(Units, AngleRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(47.5)), 47.5, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(ms(4.0), 0.004);
  EXPECT_DOUBLE_EQ(us(500.0), 0.0005);
  EXPECT_DOUBLE_EQ(khz(455.0), 455000.0);
}

TEST(BitIo, BytesToBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes = {0b10110001};
  const auto bits = bytes_to_bits(bytes);
  const std::vector<std::uint8_t> expect = {1, 0, 1, 1, 0, 0, 0, 1};
  EXPECT_EQ(bits, expect);
}

TEST(BitIo, RoundTrip) {
  Rng rng(9);
  const auto bytes = rng.bytes(257);
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(BitIo, BitsToBytesRejectsPartialByte) {
  const std::vector<std::uint8_t> bits(7, 1);
  EXPECT_THROW((void)bits_to_bytes(bits), PreconditionError);
}

TEST(BitIo, HammingDistance) {
  const std::vector<std::uint8_t> a = {0, 1, 1, 0};
  const std::vector<std::uint8_t> b = {0, 0, 1, 1};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_THROW((void)hamming_distance(a, std::vector<std::uint8_t>{1}), PreconditionError);
}

}  // namespace
}  // namespace rt
