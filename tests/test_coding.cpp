// Unit + property tests for GF(256), Reed-Solomon (errors and erasures),
// CRC, the K=7 convolutional code (hard + soft Viterbi), the block
// interleaver, and the coded-frame codec that composes them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "coding/coded_frame.h"
#include "coding/convolutional.h"
#include "coding/crc.h"
#include "coding/gf256.h"
#include "coding/interleaver.h"
#include "coding/reed_solomon.h"
#include "common/rng.h"

namespace rt::coding {
namespace {

TEST(Gf256, FieldAxiomsSpotChecks) {
  const auto& gf = Gf256::instance();
  // Multiplicative identity and zero.
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
  }
  // Every non-zero element has an inverse.
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf.inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, MulCommutativeAssociative) {
  const auto& gf = Gf256::instance();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST(Gf256, PowAlphaCyclic) {
  const auto& gf = Gf256::instance();
  EXPECT_EQ(gf.pow_alpha(0), 1);
  EXPECT_EQ(gf.pow_alpha(1), 2);
  EXPECT_EQ(gf.pow_alpha(255), 1);
  EXPECT_EQ(gf.pow_alpha(-1), gf.inv(2));
}

TEST(ReedSolomon, EncodeDecodeNoErrors) {
  ReedSolomon rs(255, 223);
  Rng rng(7);
  const auto data = rng.bytes(223);
  const auto cw = rs.encode_block(data);
  EXPECT_EQ(cw.size(), 255u);
  const auto decoded = rs.decode_block(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

class RsErrorCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RsErrorCountTest, CorrectsUpToTErrors) {
  ReedSolomon rs(63, 47);  // t = 8
  Rng rng(11 + static_cast<std::uint64_t>(GetParam()));
  const auto data = rng.bytes(47);
  auto cw = rs.encode_block(data);
  // Inject `errors` distinct symbol errors.
  const int errors = GetParam();
  std::vector<std::size_t> pos;
  while (pos.size() < static_cast<std::size_t>(errors)) {
    const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
    if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
  }
  for (const auto p : pos) cw[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  const auto decoded = rs.decode_block(cw);
  ASSERT_TRUE(decoded.has_value()) << errors << " errors";
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(UpToT, RsErrorCountTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ReedSolomon, DetectsUncorrectableBeyondT) {
  ReedSolomon rs(63, 55);  // t = 4
  Rng rng(13);
  const auto data = rng.bytes(55);
  auto cw = rs.encode_block(data);
  // 12 errors: far beyond t; decoder must fail or miscorrect detectably.
  int failures = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = cw;
    std::vector<std::size_t> pos;
    while (pos.size() < 12) {
      const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
      if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
    }
    for (const auto p : pos) corrupted[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const auto decoded = rs.decode_block(corrupted);
    if (!decoded || *decoded != data) ++failures;
  }
  // Virtually all trials must be flagged/failed (miscorrection is possible
  // but astronomically rare at this error weight).
  EXPECT_GE(failures, 49);
}

TEST(ReedSolomon, MultiBlockMessageRoundTrip) {
  ReedSolomon rs(15, 11);
  Rng rng(17);
  const auto msg = rng.bytes(100);  // not a multiple of k=11
  const auto coded = rs.encode(msg);
  EXPECT_EQ(coded.size() % 15, 0u);
  const auto decoded = rs.decode(coded, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomon, MultiBlockCorrectsScatteredErrors) {
  ReedSolomon rs(15, 11);  // t = 2 per block
  Rng rng(19);
  const auto msg = rng.bytes(44);
  auto coded = rs.encode(msg);
  // One error in each block.
  for (std::size_t b = 0; b < coded.size() / 15; ++b)
    coded[b * 15 + (b % 15)] ^= 0xA5;
  const auto decoded = rs.decode(coded, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomon, ParamValidation) {
  EXPECT_THROW(ReedSolomon(256, 100), PreconditionError);
  EXPECT_THROW(ReedSolomon(10, 10), PreconditionError);
  EXPECT_THROW(ReedSolomon(10, 0), PreconditionError);
  ReedSolomon rs(255, 223);
  EXPECT_EQ(rs.correctable_errors(), 16u);
  EXPECT_NEAR(rs.code_rate(), 223.0 / 255.0, 1e-12);
}

TEST(Crc, Crc16KnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);  // CRC-16/CCITT-FALSE check value
}

TEST(Crc, Crc32KnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);  // CRC-32/IEEE check value
}

TEST(Crc, DetectsSingleBitFlip) {
  Rng rng(23);
  const auto data = rng.bytes(128);
  const auto ref = crc16_ccitt(data);
  for (int trial = 0; trial < 64; ++trial) {
    auto mutated = data;
    const auto byte = static_cast<std::size_t>(rng.uniform_int(0, 127));
    const auto bit = static_cast<int>(rng.uniform_int(0, 7));
    mutated[byte] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_NE(crc16_ccitt(mutated), ref);
  }
}

TEST(Crc, ZeroResidueOverMessagePlusCrc) {
  // CRC-16/CCITT-FALSE has xorout 0: crc(msg || crc_be) == 0, which is
  // the receiver-side integrity check the coded frame pipeline uses.
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    auto msg = rng.bytes(1 + static_cast<std::size_t>(rng.uniform_int(0, 63)));
    const std::uint16_t c = crc16_ccitt(msg);
    msg.push_back(static_cast<std::uint8_t>(c >> 8));
    msg.push_back(static_cast<std::uint8_t>(c & 0xFF));
    EXPECT_EQ(crc16_ccitt(msg), 0);
  }
  // CRC-32/IEEE appends little-endian and leaves the fixed residue.
  for (int trial = 0; trial < 8; ++trial) {
    auto msg = rng.bytes(1 + static_cast<std::size_t>(rng.uniform_int(0, 63)));
    const std::uint32_t c = crc32(msg);
    for (int b = 0; b < 4; ++b) msg.push_back(static_cast<std::uint8_t>(c >> (8 * b)));
    EXPECT_EQ(crc32(msg), 0x2144DF1Cu);
  }
}

TEST(Crc, ExhaustiveSingleBitAndShortBurstDetection) {
  Rng rng(31);
  auto framed = rng.bytes(64);
  const std::uint16_t c = crc16_ccitt(framed);
  framed.push_back(static_cast<std::uint8_t>(c >> 8));
  framed.push_back(static_cast<std::uint8_t>(c & 0xFF));
  ASSERT_EQ(crc16_ccitt(framed), 0);
  // Every single-bit flip across message AND check bits breaks the residue.
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      framed[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_NE(crc16_ccitt(framed), 0) << "byte " << byte << " bit " << bit;
      framed[byte] ^= static_cast<std::uint8_t>(1U << bit);
    }
  }
  // A degree-16 CRC detects every burst of <= 16 bits: flip a random
  // nonzero pattern confined to two adjacent bytes.
  for (int trial = 0; trial < 200; ++trial) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(framed.size()) - 2));
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (a == 0 && b == 0) continue;
    framed[at] ^= a;
    framed[at + 1] ^= b;
    EXPECT_NE(crc16_ccitt(framed), 0);
    framed[at] ^= a;
    framed[at + 1] ^= b;
  }
}

// ---------------------------------------------------------------------------
// Reed-Solomon errors-and-erasures
// ---------------------------------------------------------------------------

TEST(ReedSolomonErasures, CorrectsErrorsPlusErasuresWithinBudget) {
  ReedSolomon rs(63, 47);  // parity 16: corrects 2e + f <= 16
  ReedSolomon::Scratch scratch;
  Rng rng(37);
  const auto data = rng.bytes(47);
  const auto cw = rs.encode_block(data);
  for (const auto& [errors, erasures] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 16}, {1, 14}, {2, 12}, {4, 8}, {6, 4}, {7, 2}, {8, 0}}) {
    auto corrupted = cw;
    std::vector<std::size_t> pos;  // distinct corruption positions
    while (pos.size() < static_cast<std::size_t>(errors + erasures)) {
      const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
      if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
    }
    for (const auto p : pos) corrupted[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const std::vector<std::size_t> flagged(pos.begin(),
                                           pos.begin() + static_cast<std::ptrdiff_t>(erasures));
    std::vector<std::uint8_t> out(47);
    ASSERT_TRUE(rs.decode_block_into(corrupted, flagged, scratch, out))
        << errors << " errors + " << erasures << " erasures";
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()))
        << errors << " errors + " << erasures << " erasures";
  }
}

TEST(ReedSolomonErasures, ErasedPositionsNeedNotBeWrong) {
  // An erasure marks distrust, not a guaranteed error: flagging correct
  // symbols must not disturb the decode.
  ReedSolomon rs(63, 47);
  ReedSolomon::Scratch scratch;
  Rng rng(41);
  const auto data = rng.bytes(47);
  auto cw = rs.encode_block(data);
  cw[5] ^= 0x3C;  // one real error
  const std::vector<std::size_t> flagged = {10, 20, 30, 40};  // all actually clean
  std::vector<std::uint8_t> out(47);
  ASSERT_TRUE(rs.decode_block_into(cw, flagged, scratch, out));
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

TEST(ReedSolomonErasures, FailsBeyondBudgetAndKeepsReceivedPrefix) {
  ReedSolomon rs(63, 55);  // parity 8
  ReedSolomon::Scratch scratch;
  Rng rng(43);
  const auto data = rng.bytes(55);
  const auto cw = rs.encode_block(data);
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto corrupted = cw;
    // 6 unflagged errors + 4 erasures: 2e + f = 16 > 8.
    std::vector<std::size_t> pos;
    while (pos.size() < 10) {
      const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
      if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
    }
    for (const auto p : pos) corrupted[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const std::vector<std::size_t> flagged(pos.begin(), pos.begin() + 4);
    std::vector<std::uint8_t> out(55);
    if (!rs.decode_block_into(corrupted, flagged, scratch, out)) {
      ++failures;
      // Failure hands back the received systematic prefix untouched.
      EXPECT_TRUE(std::equal(out.begin(), out.end(), corrupted.begin()));
    }
  }
  EXPECT_GE(failures, 29);  // miscorrection is astronomically rare
}

// ---------------------------------------------------------------------------
// Convolutional code (K=7, 133/171)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> bits_of(const std::string& s) {
  std::vector<std::uint8_t> v;
  v.reserve(s.size());
  for (const char c : s) v.push_back(c == '1' ? 1 : 0);
  return v;
}

TEST(Convolutional, GoldenK7Vectors) {
  // Reference encodings of the industry-standard K=7 (133, 171) code,
  // flush included (g1 output first in each pair).
  const ConvolutionalCode cc;
  EXPECT_EQ(cc.encode(bits_of("1")), bits_of("11100011110111"));
  EXPECT_EQ(cc.encode(bits_of("10110100")), bits_of("1110111001010110010001110000"));
  EXPECT_EQ(cc.encode(bits_of("1111")), bits_of("11010110100110011011"));
}

TEST(Convolutional, IntoVariantsMatchAllocatingWrappers) {
  const ConvolutionalCode cc;
  ConvWorkspace ws;
  Rng rng(47);
  for (const std::size_t n : {1UL, 8UL, 64UL, 257UL}) {
    std::vector<std::uint8_t> msg(n);
    rng.fill_bits(msg);
    const auto coded = cc.encode(msg);
    std::vector<std::uint8_t> coded_into;
    cc.encode_into(msg, coded_into);
    EXPECT_EQ(coded, coded_into);

    const auto decoded = cc.decode(coded);
    std::vector<std::uint8_t> decoded_into;
    cc.decode_into(coded, ws, decoded_into);
    EXPECT_EQ(decoded, decoded_into);
    EXPECT_EQ(decoded_into, msg);
  }
}

TEST(Convolutional, HardViterbiCorrectsScatteredErrors) {
  const ConvolutionalCode cc;
  ConvWorkspace ws;
  Rng rng(53);
  std::vector<std::uint8_t> msg(96);
  rng.fill_bits(msg);
  auto coded = cc.encode(msg);
  // d_free = 10: a few well-separated single-bit errors are correctable.
  for (const std::size_t p : {8UL, 60UL, 120UL, 180UL}) coded[p] ^= 1U;
  std::vector<std::uint8_t> decoded;
  cc.decode_into(coded, ws, decoded);
  EXPECT_EQ(decoded, msg);
}

TEST(Convolutional, SoftNeverWorseThanHardOnAwgn) {
  // BPSK over AWGN: y = (1 - 2c) + n, LLR = 2y / sigma^2. At every SNR the
  // soft decoder's bit errors must not exceed the hard-sliced decoder's --
  // the textbook ~2 dB soft-decision advantage, checked deterministically.
  const ConvolutionalCode cc;
  ConvWorkspace ws;
  Rng rng(59);
  std::vector<std::uint8_t> msg(512);
  rng.fill_bits(msg);
  const auto coded = cc.encode(msg);
  std::size_t soft_total = 0, hard_total = 0;
  for (const double snr_db : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    const double sigma = std::pow(10.0, -snr_db / 20.0);
    std::vector<float> llrs(coded.size());
    std::vector<std::uint8_t> sliced(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double y = (coded[i] ? -1.0 : 1.0) + sigma * rng.gaussian();
      llrs[i] = static_cast<float>(2.0 * y / (sigma * sigma));
      sliced[i] = y < 0.0 ? 1U : 0U;
    }
    std::vector<std::uint8_t> soft_out, hard_out;
    cc.decode_soft_into(llrs, ws, soft_out);
    cc.decode_into(sliced, ws, hard_out);
    std::size_t soft_err = 0, hard_err = 0;
    for (std::size_t i = 0; i < msg.size(); ++i) {
      soft_err += soft_out[i] != msg[i] ? 1U : 0U;
      hard_err += hard_out[i] != msg[i] ? 1U : 0U;
    }
    EXPECT_LE(soft_err, hard_err) << "at " << snr_db << " dB";
    soft_total += soft_err;
    hard_total += hard_err;
  }
  // Across the sweep the advantage must be strict, not just a tie.
  EXPECT_LT(soft_total, hard_total);
}

TEST(Convolutional, ErasedBitsAreFree) {
  // Zero LLRs carry no metric: a handful of erased (not flipped) coded
  // bits must decode clean even where a hard slicer would have to guess.
  const ConvolutionalCode cc;
  ConvWorkspace ws;
  Rng rng(61);
  std::vector<std::uint8_t> msg(64);
  rng.fill_bits(msg);
  const auto coded = cc.encode(msg);
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? -4.0F : 4.0F;
  for (const std::size_t p : {3UL, 40UL, 41UL, 90UL, 127UL}) llrs[p] = 0.0F;
  std::vector<std::uint8_t> out;
  cc.decode_soft_into(llrs, ws, out);
  EXPECT_EQ(out, msg);
}

// ---------------------------------------------------------------------------
// Block interleaver
// ---------------------------------------------------------------------------

TEST(Interleaver, RoundTripAndIntoEquivalence) {
  Rng rng(67);
  for (const auto& [rows, cols] :
       std::vector<std::pair<std::size_t, std::size_t>>{{1, 8}, {4, 4}, {4, 39}, {8, 16}}) {
    const BlockInterleaver il(rows, cols);
    std::vector<std::uint8_t> data(rows * cols);
    rng.fill_bits(data);
    const auto shuffled = il.interleave(std::span<const std::uint8_t>(data));
    EXPECT_EQ(il.deinterleave(std::span<const std::uint8_t>(shuffled)), data);
    std::vector<std::uint8_t> shuffled_into, back_into;
    il.interleave_into(std::span<const std::uint8_t>(data), shuffled_into);
    EXPECT_EQ(shuffled_into, shuffled);
    il.deinterleave_into(std::span<const std::uint8_t>(shuffled_into), back_into);
    EXPECT_EQ(back_into, data);
  }
}

TEST(Interleaver, BurstSpreadsToOneErrorPerRow) {
  // A contiguous burst of length <= rows in the interleaved stream lands
  // at most once in every deinterleaved row of `cols` symbols -- the
  // property that lets a Reed-Solomon codeword absorb DFE error bursts.
  const std::size_t rows = 8, cols = 16;
  const BlockInterleaver il(rows, cols);
  EXPECT_EQ(il.burst_tolerance(), rows);
  std::vector<std::uint8_t> data(rows * cols, 0);
  for (std::size_t start = 0; start + rows <= data.size(); start += 5) {
    auto shuffled = il.interleave(std::span<const std::uint8_t>(data));
    for (std::size_t i = 0; i < rows; ++i) shuffled[start + i] ^= 1U;
    const auto back = il.deinterleave(std::span<const std::uint8_t>(shuffled));
    for (std::size_t r = 0; r < rows; ++r) {
      int hits = 0;
      for (std::size_t c = 0; c < cols; ++c) hits += back[r * cols + c] != 0 ? 1 : 0;
      EXPECT_LE(hits, 1) << "burst at " << start << ", row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Coded frame codec (whiten -> FEC -> interleave -> CRC and back)
// ---------------------------------------------------------------------------

std::vector<float> llrs_from_bits(std::span<const std::uint8_t> bits, float mag = 4.0F) {
  std::vector<float> llrs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) llrs[i] = bits[i] ? -mag : mag;
  return llrs;
}

class CodedFrameKindTest : public ::testing::TestWithParam<CodeDescriptor> {};

TEST_P(CodedFrameKindTest, CleanRoundTripSoftAndHard) {
  CodedFrameConfig cfg;
  cfg.code = GetParam();
  const CodedFrameCodec codec(cfg);
  CodedFrameWorkspace ws;
  Rng rng(71);
  std::vector<std::uint8_t> payload(32 * 8);
  rng.fill_bits(payload);
  std::vector<std::uint8_t> tx;
  codec.encode_into(payload, ws, tx);
  ASSERT_EQ(tx.size(), codec.coded_bits(payload.size()));

  const auto llrs = llrs_from_bits(tx);
  const auto soft = codec.decode_soft_into(llrs, payload.size(), ws);
  EXPECT_TRUE(soft.decode_ok);
  EXPECT_TRUE(soft.crc_ok);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), soft.payload.begin()));

  const auto hard = codec.decode_hard_into(tx, payload.size(), ws);
  EXPECT_TRUE(hard.crc_ok);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), hard.payload.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CodedFrameKindTest,
                         ::testing::Values(CodeDescriptor::none(),
                                           CodeDescriptor::convolutional(7),
                                           CodeDescriptor::reed_solomon(63, 47)));

TEST(CodedFrame, CrcCatchesCorruptionOnUncodedFrames) {
  CodedFrameConfig cfg;  // kNone
  const CodedFrameCodec codec(cfg);
  CodedFrameWorkspace ws;
  Rng rng(73);
  std::vector<std::uint8_t> payload(16 * 8);
  rng.fill_bits(payload);
  std::vector<std::uint8_t> tx;
  codec.encode_into(payload, ws, tx);
  tx[17] ^= 1U;
  const auto res = codec.decode_hard_into(tx, payload.size(), ws);
  EXPECT_FALSE(res.crc_ok);
}

TEST(CodedFrame, GmdErasureRetriesRescueWeakBytes) {
  // Plain errors-only RS fails at t+2 byte errors, but when the wrong
  // bytes announce themselves with tiny LLR magnitudes the GMD retry
  // ladder erases them and the decode lands -- the LLR-driven erasure
  // marking the soft path adds over hard decoding.
  CodedFrameConfig cfg;
  cfg.code = CodeDescriptor::reed_solomon(63, 47);  // t = 8
  const CodedFrameCodec codec(cfg);
  CodedFrameWorkspace ws;
  Rng rng(79);
  std::vector<std::uint8_t> payload(32 * 8);
  rng.fill_bits(payload);
  std::vector<std::uint8_t> tx;
  codec.encode_into(payload, ws, tx);

  auto llrs = llrs_from_bits(tx);
  // Corrupt 10 interleaved bytes (> t) but mark every bit of them weak.
  std::vector<std::size_t> bytes;
  while (bytes.size() < 10) {
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(tx.size() / 8) - 1));
    if (std::find(bytes.begin(), bytes.end(), b) == bytes.end()) bytes.push_back(b);
  }
  for (const auto b : bytes) {
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t i = b * 8 + j;
      // First bit of each chosen byte always flips, so every chosen byte
      // really is a symbol error; the rest flip at random.
      const bool flip = j == 0 || rng.uniform_int(0, 1) == 1;
      const std::uint8_t bit = (tx[i] ^ (flip ? 1U : 0U)) & 1U;
      llrs[i] = bit ? -0.01F : 0.01F;
    }
  }

  // Hard decoding of the same sliced stream must fail: 10 byte errors
  // exceed the errors-only budget and there is no erasure ladder.
  std::vector<std::uint8_t> sliced(tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) sliced[i] = std::signbit(llrs[i]) ? 1U : 0U;
  const auto hard = codec.decode_hard_into(sliced, payload.size(), ws);
  EXPECT_FALSE(hard.crc_ok);

  const auto soft = codec.decode_soft_into(llrs, payload.size(), ws);
  EXPECT_TRUE(soft.crc_ok);
  EXPECT_GT(soft.erasures_used, 0u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), soft.payload.begin()));
}

TEST(CodedFrame, WorkspaceReuseIsDeterministic) {
  // One workspace across frames of different codes and sizes: results
  // must not depend on what the buffers held before.
  CodedFrameConfig cc_cfg;
  cc_cfg.code = CodeDescriptor::convolutional(7);
  CodedFrameConfig rs_cfg;
  rs_cfg.code = CodeDescriptor::reed_solomon(63, 47);
  const CodedFrameCodec cc(cc_cfg);
  const CodedFrameCodec rs(rs_cfg);
  CodedFrameWorkspace shared, fresh;
  Rng rng(83);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = (round % 2 == 0 ? 16 : 48) * 8;
    std::vector<std::uint8_t> payload(n);
    rng.fill_bits(payload);
    const CodedFrameCodec& codec = round % 2 == 0 ? cc : rs;
    std::vector<std::uint8_t> tx_shared, tx_fresh;
    codec.encode_into(payload, shared, tx_shared);
    CodedFrameWorkspace scratch;
    codec.encode_into(payload, scratch, tx_fresh);
    EXPECT_EQ(tx_shared, tx_fresh);
    const auto llrs = llrs_from_bits(tx_shared);
    const auto a = codec.decode_soft_into(llrs, payload.size(), shared);
    const auto b = codec.decode_soft_into(llrs, payload.size(), scratch);
    EXPECT_EQ(a.crc_ok, b.crc_ok);
    EXPECT_TRUE(std::equal(a.payload.begin(), a.payload.end(), b.payload.begin()));
  }
}

}  // namespace
}  // namespace rt::coding
