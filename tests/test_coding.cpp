// Unit + property tests for GF(256), Reed-Solomon and CRC.
#include <gtest/gtest.h>

#include "coding/crc.h"
#include "coding/gf256.h"
#include "coding/reed_solomon.h"
#include "common/rng.h"

namespace rt::coding {
namespace {

TEST(Gf256, FieldAxiomsSpotChecks) {
  const auto& gf = Gf256::instance();
  // Multiplicative identity and zero.
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
  }
  // Every non-zero element has an inverse.
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf.inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, MulCommutativeAssociative) {
  const auto& gf = Gf256::instance();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST(Gf256, PowAlphaCyclic) {
  const auto& gf = Gf256::instance();
  EXPECT_EQ(gf.pow_alpha(0), 1);
  EXPECT_EQ(gf.pow_alpha(1), 2);
  EXPECT_EQ(gf.pow_alpha(255), 1);
  EXPECT_EQ(gf.pow_alpha(-1), gf.inv(2));
}

TEST(ReedSolomon, EncodeDecodeNoErrors) {
  ReedSolomon rs(255, 223);
  Rng rng(7);
  const auto data = rng.bytes(223);
  const auto cw = rs.encode_block(data);
  EXPECT_EQ(cw.size(), 255u);
  const auto decoded = rs.decode_block(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

class RsErrorCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RsErrorCountTest, CorrectsUpToTErrors) {
  ReedSolomon rs(63, 47);  // t = 8
  Rng rng(11 + static_cast<std::uint64_t>(GetParam()));
  const auto data = rng.bytes(47);
  auto cw = rs.encode_block(data);
  // Inject `errors` distinct symbol errors.
  const int errors = GetParam();
  std::vector<std::size_t> pos;
  while (pos.size() < static_cast<std::size_t>(errors)) {
    const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
    if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
  }
  for (const auto p : pos) cw[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  const auto decoded = rs.decode_block(cw);
  ASSERT_TRUE(decoded.has_value()) << errors << " errors";
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(UpToT, RsErrorCountTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ReedSolomon, DetectsUncorrectableBeyondT) {
  ReedSolomon rs(63, 55);  // t = 4
  Rng rng(13);
  const auto data = rng.bytes(55);
  auto cw = rs.encode_block(data);
  // 12 errors: far beyond t; decoder must fail or miscorrect detectably.
  int failures = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = cw;
    std::vector<std::size_t> pos;
    while (pos.size() < 12) {
      const auto p = static_cast<std::size_t>(rng.uniform_int(0, 62));
      if (std::find(pos.begin(), pos.end(), p) == pos.end()) pos.push_back(p);
    }
    for (const auto p : pos) corrupted[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const auto decoded = rs.decode_block(corrupted);
    if (!decoded || *decoded != data) ++failures;
  }
  // Virtually all trials must be flagged/failed (miscorrection is possible
  // but astronomically rare at this error weight).
  EXPECT_GE(failures, 49);
}

TEST(ReedSolomon, MultiBlockMessageRoundTrip) {
  ReedSolomon rs(15, 11);
  Rng rng(17);
  const auto msg = rng.bytes(100);  // not a multiple of k=11
  const auto coded = rs.encode(msg);
  EXPECT_EQ(coded.size() % 15, 0u);
  const auto decoded = rs.decode(coded, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomon, MultiBlockCorrectsScatteredErrors) {
  ReedSolomon rs(15, 11);  // t = 2 per block
  Rng rng(19);
  const auto msg = rng.bytes(44);
  auto coded = rs.encode(msg);
  // One error in each block.
  for (std::size_t b = 0; b < coded.size() / 15; ++b)
    coded[b * 15 + (b % 15)] ^= 0xA5;
  const auto decoded = rs.decode(coded, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomon, ParamValidation) {
  EXPECT_THROW(ReedSolomon(256, 100), PreconditionError);
  EXPECT_THROW(ReedSolomon(10, 10), PreconditionError);
  EXPECT_THROW(ReedSolomon(10, 0), PreconditionError);
  ReedSolomon rs(255, 223);
  EXPECT_EQ(rs.correctable_errors(), 16u);
  EXPECT_NEAR(rs.code_rate(), 223.0 / 255.0, 1e-12);
}

TEST(Crc, Crc16KnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);  // CRC-16/CCITT-FALSE check value
}

TEST(Crc, Crc32KnownVector) {
  const std::string s = "123456789";
  const std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);  // CRC-32/IEEE check value
}

TEST(Crc, DetectsSingleBitFlip) {
  Rng rng(23);
  const auto data = rng.bytes(128);
  const auto ref = crc16_ccitt(data);
  for (int trial = 0; trial < 64; ++trial) {
    auto mutated = data;
    const auto byte = static_cast<std::size_t>(rng.uniform_int(0, 127));
    const auto bit = static_cast<int>(rng.uniform_int(0, 7));
    mutated[byte] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_NE(crc16_ccitt(mutated), ref);
  }
}

}  // namespace
}  // namespace rt::coding
