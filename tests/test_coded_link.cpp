// End-to-end tests for sim::CodedLink: FEC-wrapped packets through the
// full TX -> channel -> RX pipeline, covering delivery at high SNR, the
// purity contract (serial == any parallel partition, workspace reuse ==
// fresh workspaces), and the soft/hard decode modes sharing one channel.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "coding/code_descriptor.h"
#include "common/units.h"
#include "runtime/thread_pool.h"
#include "sim/coded_link.h"
#include "sim/link_sim.h"
#include "sim/packet_workspace.h"

namespace rt::sim {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

SimOptions soft_options(std::uint64_t seed) {
  SimOptions so;
  so.seed = seed;
  so.offline_yaws_deg = {0.0};
  so.export_soft_bits = true;
  return so;
}

TEST(CodedLink, DeliversCleanFramesAtHighSnr) {
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 22.0;
  ch.noise_seed = 5;
  const LinkSimulator sim(p, p.tag_config(), ch, soft_options(42));

  for (const auto& code : {coding::CodeDescriptor::convolutional(7),
                           coding::CodeDescriptor::reed_solomon(63, 47)}) {
    coding::CodedFrameConfig cfg;
    cfg.code = code;
    const CodedLink link(sim, cfg);
    const auto stats = link.run(4, 16);
    EXPECT_EQ(stats.packets, 4) << code.label();
    EXPECT_EQ(stats.preamble_failures, 0) << code.label();
    EXPECT_EQ(stats.crc_failures, 0) << code.label();
    EXPECT_EQ(stats.info_bit_errors, 0u) << code.label();
    // The coded stream really is longer than the information it carries.
    EXPECT_GT(stats.raw_bits, stats.info_bits) << code.label();
    EXPECT_EQ(stats.info_bits, 4u * 16u * 8u) << code.label();
  }
}

TEST(CodedLink, SerialEqualsAnyParallelPartition) {
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 13.0;  // low enough that decodes actually fail
  ch.noise_seed = 11;
  const LinkSimulator sim(p, p.tag_config(), ch, soft_options(77));
  coding::CodedFrameConfig cfg;
  cfg.code = coding::CodeDescriptor::reed_solomon(63, 47);
  const CodedLink link(sim, cfg);

  constexpr int kPackets = 8;
  const auto serial = link.run(kPackets, 16);

  for (const unsigned threads : {2U, 4U}) {
    runtime::ThreadPool pool(threads);
    const int parts = static_cast<int>(threads);
    std::vector<CodedLinkStats> partials(static_cast<std::size_t>(parts));
    std::vector<std::future<void>> futs;
    futs.reserve(static_cast<std::size_t>(parts));
    for (int t = 0; t < parts; ++t) {
      futs.push_back(pool.submit([&link, &partials, t, parts] {
        PacketWorkspace ws;  // one workspace per task, never shared
        for (int i = t; i < kPackets; i += parts)
          partials[static_cast<std::size_t>(t)].add(
              link.run_packet(static_cast<std::uint64_t>(i), 16, ws));
      }));
    }
    for (auto& f : futs) f.get();
    CodedLinkStats merged;
    for (const auto& s : partials) merged.merge(s);
    EXPECT_EQ(merged, serial) << threads << " threads";
  }
}

TEST(CodedLink, WorkspaceReuseMatchesFreshWorkspaces) {
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 13.0;
  ch.noise_seed = 11;
  const LinkSimulator sim(p, p.tag_config(), ch, soft_options(77));
  coding::CodedFrameConfig cfg;
  cfg.code = coding::CodeDescriptor::convolutional(7);
  const CodedLink link(sim, cfg);

  PacketWorkspace shared;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto reused = link.run_packet(i, 16, shared);
    PacketWorkspace fresh;
    const auto clean = link.run_packet(i, 16, fresh);
    EXPECT_EQ(reused.crc_ok, clean.crc_ok) << "packet " << i;
    EXPECT_EQ(reused.info_bit_errors, clean.info_bit_errors) << "packet " << i;
    EXPECT_EQ(reused.raw_bit_errors, clean.raw_bit_errors) << "packet " << i;
    EXPECT_EQ(reused.erasures_used, clean.erasures_used) << "packet " << i;
  }
}

TEST(CodedLink, SoftAndHardModesShareOneChannel) {
  // Decode mode only changes the receiver's use of the LLRs; the on-air
  // frame and the channel realization are identical, so the pre-decode
  // raw error counts must match bit for bit.
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 13.0;
  ch.noise_seed = 19;
  const LinkSimulator sim(p, p.tag_config(), ch, soft_options(99));
  coding::CodedFrameConfig cfg;
  cfg.code = coding::CodeDescriptor::reed_solomon(63, 47);
  const CodedLink link(sim, cfg);

  PacketWorkspace ws;
  std::size_t soft_info_errors = 0;
  std::size_t hard_info_errors = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto soft = link.run_packet(i, 16, ws, CodedLink::DecodeMode::kSoft);
    const auto hard = link.run_packet(i, 16, ws, CodedLink::DecodeMode::kHard);
    ASSERT_TRUE(soft.preamble_found);
    EXPECT_EQ(soft.raw_bits, hard.raw_bits) << "packet " << i;
    EXPECT_EQ(soft.raw_bit_errors, hard.raw_bit_errors) << "packet " << i;
    soft_info_errors += soft.info_bit_errors;
    hard_info_errors += hard.info_bit_errors;
  }
  // Sign-aligned LLRs slice back to the hard decisions, so soft decoding
  // can only refine the hard outcome, never lose to it here.
  EXPECT_LE(soft_info_errors, hard_info_errors);
}

}  // namespace
}  // namespace rt::sim
