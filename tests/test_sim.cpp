// Tests for the end-to-end simulator: channel calibration, link stats,
// mobility scenarios and trace IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/units.h"
#include "sim/channel.h"
#include "sim/link_sim.h"
#include "sim/mobility.h"
#include "sim/trace.h"

namespace rt::sim {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

SimOptions fast_options() {
  SimOptions o;
  o.offline_yaws_deg = {0.0};
  return o;
}

TEST(ChannelConfigTest, SnrFollowsLinkBudgetAndYaw) {
  ChannelConfig cfg;
  cfg.pose.distance_m = 7.5;
  EXPECT_NEAR(cfg.snr_db(), 28.0, 1e-9);
  cfg.pose.yaw_rad = rt::deg_to_rad(45.0);
  EXPECT_LT(cfg.snr_db(), 28.0 - 2.5);
  cfg.snr_override_db = 50.0;
  EXPECT_DOUBLE_EQ(cfg.snr_db(), 50.0);
}

TEST(ChannelTest, NoiseSigmaRealizesTargetSnr) {
  const auto p = fast_params();
  ChannelConfig cfg;
  cfg.snr_override_db = 20.0;
  cfg.ambient.illuminance_lux = 0.0;  // isolate the AWGN term
  Channel ch(p, p.tag_config(), cfg);
  // Check sigma against the definition: P_ref / (2 sigma^2) = SNR.
  const double snr_lin = ch.reference_signal_power() /
                         (2.0 * ch.noise_sigma_per_axis() * ch.noise_sigma_per_axis());
  EXPECT_NEAR(rt::to_db(snr_lin), 20.0, 1e-9);
}

TEST(ChannelTest, NoiselessSourceIsDeterministic) {
  const auto p = fast_params();
  ChannelConfig cfg;
  cfg.pose.roll_rad = rt::deg_to_rad(30.0);
  Channel ch(p, p.tag_config(), cfg);
  const auto src = ch.noiseless_source();
  const auto a = src({}, rt::ms(8.0));
  const auto b = src({}, rt::ms(8.0));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ChannelTest, NoisySourceDrawsFreshNoisePerPacket) {
  const auto p = fast_params();
  ChannelConfig cfg;
  cfg.snr_override_db = 20.0;
  Channel ch(p, p.tag_config(), cfg);
  auto src = ch.source();
  const auto a = src({}, rt::ms(4.0));
  const auto b = src({}, rt::ms(4.0));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff = any_diff || (a[i] != b[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Mobility, ScenariosPerturbGainMildly) {
  for (const auto& sc :
       {MobilityScenario::none(), MobilityScenario::walk_10cm_off_los(),
        MobilityScenario::walk_behind_tag(), MobilityScenario::work_5cm_off_los(),
        MobilityScenario::three_people_around_los()}) {
    for (double t = 0.0; t < 2.0; t += 0.01) {
      EXPECT_GT(sc.gain(t), 0.95) << sc.name;
      EXPECT_LT(sc.gain(t), 1.05) << sc.name;
    }
  }
  EXPECT_DOUBLE_EQ(MobilityScenario::none().gain(1.23), 1.0);
}

TEST(LinkSim, HighSnrLinkIsReliable) {
  const auto p = fast_params();
  ChannelConfig cfg;
  cfg.snr_override_db = 45.0;
  LinkSimulator sim(p, p.tag_config(), cfg, fast_options());
  const auto stats = sim.run(3, 16);
  EXPECT_EQ(stats.preamble_failures, 0);
  EXPECT_EQ(stats.bit_errors, 0u);
  EXPECT_EQ(stats.total_bits, 3u * 16u * 8u);
}

TEST(LinkSim, LowSnrLinkDegrades) {
  const auto p = fast_params();
  ChannelConfig hi;
  hi.snr_override_db = 45.0;
  ChannelConfig lo;
  lo.snr_override_db = 3.0;
  LinkSimulator sim_hi(p, p.tag_config(), hi, fast_options());
  LinkSimulator sim_lo(p, p.tag_config(), lo, fast_options());
  const auto s_hi = sim_hi.run(3, 16);
  const auto s_lo = sim_lo.run(3, 16);
  EXPECT_GT(s_lo.ber(), s_hi.ber());
  EXPECT_GT(s_lo.ber(), 0.01);
}

TEST(LinkSim, OracleTemplatesAtLeastAsGoodAsOnlineTraining) {
  const auto p = fast_params();
  ChannelConfig cfg;
  cfg.snr_override_db = 14.0;
  auto tag = p.tag_config();
  tag.heterogeneity = {0.05, 0.03, rt::deg_to_rad(1.0)};
  auto opt_online = fast_options();
  auto opt_oracle = fast_options();
  opt_oracle.oracle_templates = true;
  LinkSimulator online(p, tag, cfg, opt_online);
  LinkSimulator oracle(p, tag, cfg, opt_oracle);
  const auto s_online = online.run(4, 16);
  const auto s_oracle = oracle.run(4, 16);
  EXPECT_LE(s_oracle.ber(), s_online.ber() + 0.05);
}

TEST(LinkSim, RollDoesNotBreakTheLink) {
  // Fig. 16b: PQAM + preamble correction make roll nearly free.
  const auto p = fast_params();
  for (const double roll_deg : {0.0, 45.0, 90.0, 135.0}) {
    ChannelConfig cfg;
    cfg.snr_override_db = 35.0;
    cfg.pose.roll_rad = rt::deg_to_rad(roll_deg);
    LinkSimulator sim(p, p.tag_config(), cfg, fast_options());
    const auto stats = sim.run(2, 16);
    EXPECT_EQ(stats.bit_errors, 0u) << "roll " << roll_deg;
  }
}

TEST(LinkStatsTest, BerAccounting) {
  LinkStats s;
  s.packets = 2;
  s.preamble_failures = 1;
  s.bit_errors = 10;
  s.total_bits = 100;
  EXPECT_DOUBLE_EQ(s.ber(), 0.1);
  EXPECT_DOUBLE_EQ(s.packet_loss(), 0.5);
  EXPECT_DOUBLE_EQ(LinkStats{}.ber(), 0.0);
}

TEST(Trace, CsvRoundTrip) {
  sig::IqWaveform w(40e3, 25);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = {static_cast<double>(i) * 0.1, -static_cast<double>(i) * 0.2};
  const std::string path = "/tmp/rt_trace_test.csv";
  write_trace_csv(path, w);
  const auto r = read_trace_csv(path);
  ASSERT_EQ(r.size(), w.size());
  EXPECT_DOUBLE_EQ(r.sample_rate_hz, 40e3);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(r[i].real(), w[i].real(), 1e-9);
    EXPECT_NEAR(r[i].imag(), w[i].imag(), 1e-9);
  }
  std::remove(path.c_str());
}

TEST(Trace, RejectsMalformedFiles) {
  const std::string path = "/tmp/rt_trace_bad.csv";
  {
    std::ofstream f(path);
    f << "not a trace\n";
  }
  EXPECT_THROW((void)read_trace_csv(path), RuntimeError);
  EXPECT_THROW((void)read_trace_csv("/tmp/definitely_missing_trace.csv"), RuntimeError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rt::sim
