// Cross-module integration tests: the full packet path through the
// passband analog frontend, low-SNR synchronization, training
// regularization behaviour, and stale-reference ablation plumbing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "frontend/receiver_chain.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"
#include "sim/link_sim.h"
#include "signal/correlate.h"

namespace rt {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

TEST(Integration, FullPacketThroughPassbandFrontend) {
  // Tag waveform -> chopped illumination -> photodiodes -> band-pass ->
  // synchronous detection -> decimation -> full demodulation. Validates
  // that the analog frontend is transparent to the PHY (design decision 5
  // in DESIGN.md), not just on test tones but on a real packet.
  const auto p = fast_params();
  const phy::Modulator mod(p);
  Rng rng(3);
  const auto bits = rng.bits(64);
  const auto pkt = mod.modulate(bits);

  // Noiseless tag baseband (unit link gain, with a roll to correct).
  sim::ChannelConfig chc;
  chc.pose.roll_rad = rt::deg_to_rad(35.0);
  sim::Channel channel(p, p.tag_config(), chc);
  const auto src = channel.noiseless_source();
  const auto baseband = src(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  frontend::ReceiverChainConfig rc;
  rc.passband_fs_hz = 4.0e6;
  rc.baseband_fs_hz = p.sample_rate_hz;
  rc.photodiode.thermal_noise_sigma = 1e-3;
  const frontend::ReceiverChain chain(rc);
  // Total intensity: all pixels at unit gain (2L modules x 1 px) plus some
  // margin so individual diode intensities stay non-negative.
  const double total_intensity = 16.0;
  Rng noise(7);
  const auto pd = chain.illuminate(baseband, total_intensity, 0.2);
  const auto recovered = chain.process(pd, noise);

  const phy::Demodulator demod(p, sim::train_offline_model(p, p.tag_config()));
  phy::DemodOptions opts;
  opts.search_limit = 8 * p.samples_per_slot();
  const auto res = demod.demodulate(recovered, pkt.layout.payload_slots, opts);
  ASSERT_TRUE(res.preamble_found) << "residual " << res.detection.normalized_residual;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += res.bits[i] != bits[i];
  EXPECT_EQ(errors, 0u) << "passband frontend must be transparent to the PHY";
}

TEST(Integration, LowSnrSynchronizationViaCorrelationPath) {
  // Below ~5 dB the regression residual is noise-dominated; the
  // correlation path (full preamble processing gain) must still find the
  // packet (paper: 1 Kbps synchronizes at -5 dB).
  const auto p = fast_params();
  const phy::Modulator mod(p);
  Rng rng(5);
  const auto pkt = mod.modulate(rng.bits(32));
  sim::ChannelConfig ch;
  ch.snr_override_db = 0.0;
  sim::Channel channel(p, p.tag_config(), ch);
  auto src = channel.source();
  const auto rx = src(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  const phy::PreambleProcessor pre(p);
  const auto det = pre.detect(rx, 4 * p.samples_per_slot());
  EXPECT_TRUE(det.found) << "corr peak " << det.correlation_peak << " residual "
                         << det.normalized_residual;
  EXPECT_GT(det.correlation_peak, pre.correlation_threshold());
  EXPECT_NEAR(static_cast<double>(det.start_sample), 0.0, 2.0);
}

TEST(Integration, CorrelationCenteredIgnoresDcBias) {
  Rng rng(9);
  std::vector<sig::Complex> ref(64);
  for (auto& r : ref) r = sig::Complex(rng.gaussian(), rng.gaussian());
  std::vector<sig::Complex> x(400, sig::Complex(25.0, -13.0));  // huge DC floor
  for (std::size_t i = 0; i < ref.size(); ++i) x[150 + i] += ref[i];
  const auto corr = sig::sliding_correlation_centered(x, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < corr.size(); ++i)
    if (corr[i] > corr[best]) best = i;
  EXPECT_EQ(best, 150u);
  EXPECT_GT(corr[best], 0.95);
}

TEST(Integration, OfflineModelCarriesSingularValues) {
  const auto p = fast_params();
  const auto model = sim::train_offline_model(p, p.tag_config(), {0.0, 20.0}, 3);
  ASSERT_EQ(model.sigma.size(), 3u);
  EXPECT_GT(model.sigma[0], model.sigma[1]);
  EXPECT_GT(model.sigma[1], 0.0);
}

TEST(Integration, RidgeTrainingRecoversOracleTemplates) {
  // On an ideal (homogeneous) tag the offline fingerprint ensemble is
  // rank-1, so the un-regularized online solve is ill-conditioned: weak
  // numerical bases absorb large mutually-cancelling coefficients and the
  // per-module templates come out wrong even though the sum fits. The
  // sigma-weighted ridge suppresses exactly those directions -- ridged
  // templates must match the oracle fingerprints; plain ones need not.
  const auto p = fast_params();
  const auto tag = p.tag_config();
  sim::ChannelConfig chc;
  sim::Channel channel(p, tag, chc);
  const phy::Modulator mod(p);
  Rng rng(11);
  const auto pkt = mod.modulate(rng.bits(32));
  const auto rx = channel.noiseless_source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  const auto model = sim::train_offline_model(p, tag);
  // The trainer consumes the rotation-corrected, baseline-free signal.
  const phy::PreambleProcessor pre(p);
  const auto det = pre.detect(rx, 2 * p.samples_per_slot());
  ASSERT_TRUE(det.found);
  const auto corrected = pre.correct(rx, det);
  const auto ridged =
      phy::OnlineTrainer::train(p, model, pkt.layout, corrected, det.start_sample,
                                /*ridge=*/1e-4);
  const auto oracle = phy::collect_fingerprints(p, channel.noiseless_source());
  for (int m = 0; m < ridged.modules(); ++m) {
    const auto a = ridged.pulse(m, 0b001);  // fired, no recent history
    const auto b = oracle.pulse(m, 0b001);
    double err = 0.0;
    double ref = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      err += std::norm(a[k] - b[k]);
      ref += std::norm(b[k]);
    }
    EXPECT_LT(std::sqrt(err / ref), 0.1) << "module " << m;
  }
}

TEST(Integration, OraclePoseModelsStaleReferences) {
  // Fig. 16c ablation plumbing: oracle templates collected at yaw 0 while
  // operating at a large yaw must do WORSE than online training. A dense
  // constellation (16-PQAM) makes the stale-shape deviation visible.
  auto p = fast_params();
  p.bits_per_axis = 2;
  auto tag = p.tag_config();
  tag.yaw_timing_skew = 0.9;  // strong off-axis distortion for this scenario
  sim::ChannelConfig ch;
  ch.pose.distance_m = 3.0;
  ch.pose.yaw_rad = rt::deg_to_rad(55.0);
  ch.snr_override_db = 24.0;

  sim::SimOptions stale;
  stale.offline_yaws_deg = {0.0};
  stale.oracle_templates = true;
  stale.oracle_pose = sim::Pose{3.0, 0.0, 0.0};
  sim::LinkSimulator stale_sim(p, tag, ch, stale);

  sim::SimOptions adaptive;
  adaptive.offline_yaws_deg = {0.0, 45.0};
  sim::LinkSimulator adaptive_sim(p, tag, ch, adaptive);

  const auto s_stale = stale_sim.run(4, 16);
  const auto s_adaptive = adaptive_sim.run(4, 16);
  EXPECT_GE(s_stale.ber(), s_adaptive.ber());
  EXPECT_GT(s_stale.ber(), 0.0) << "stale references should cause symbol deviation errors";
}

TEST(Integration, PixelCalibrationRecoversTrueGains) {
  // 16-PQAM tag with a strong, gain-only pixel spread: the calibration
  // rounds must recover each pixel's gain to a few percent.
  auto p = fast_params();
  p.bits_per_axis = 2;
  p.pixel_calibration = true;
  auto tag = p.tag_config();
  tag.heterogeneity = {0.08, 0.0, 0.0};
  tag.seed = 99;
  sim::ChannelConfig chc;
  sim::Channel channel(p, tag, chc);
  const phy::Modulator mod(p);
  Rng rng(5);
  const auto pkt = mod.modulate(rng.bits(32));
  const auto rx = channel.noiseless_source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());
  const phy::PreambleProcessor pre(p);
  const auto det = pre.detect(rx, 2 * p.samples_per_slot());
  ASSERT_TRUE(det.found);
  const auto corrected = pre.correct(rx, det);
  const auto model = sim::train_offline_model(p, tag);
  const auto bank = phy::OnlineTrainer::train(p, model, pkt.layout, corrected, det.start_sample);
  ASSERT_TRUE(bank.has_pixel_gains());

  // Ground truth from the tag itself: per-pixel gain relative to the
  // module mean (the module mean is absorbed by the per-module
  // coefficients, so compare normalized shapes).
  lcm::TagArray truth(tag);
  const auto check_group = [&](const std::vector<lcm::Module>& mods, int base) {
    for (std::size_t mi = 0; mi < mods.size(); ++mi) {
      const auto& px = mods[mi].pixels();
      double mean = 0.0;
      for (const auto& pxl : px) mean += pxl.params().gain * pxl.params().area;
      // Estimated gains are relative to the trained module template, which
      // already carries the area-weighted mean gain.
      for (std::size_t wb = 0; wb < px.size(); ++wb) {
        const double truth_rel = px[wb].params().gain / mean;
        const double est = bank.pixel_gain(base + static_cast<int>(mi), static_cast<int>(wb))
                               .real();
        EXPECT_NEAR(est, truth_rel, 0.06)
            << "module " << base + static_cast<int>(mi) << " pixel " << wb;
      }
    }
  };
  check_group(truth.i_modules(), 0);
  check_group(truth.q_modules(), p.dsm_order);
}

TEST(Integration, PixelCalibrationRemovesDenseConstellationFloor) {
  // The extension's payoff: 16-PQAM with 6% gain spread at ample SNR.
  auto p = fast_params();
  p.bits_per_axis = 2;
  auto tag = p.tag_config();
  tag.heterogeneity = {0.06, 0.0, 0.0};
  tag.seed = 4242;
  sim::ChannelConfig ch;
  ch.snr_override_db = 40.0;
  sim::SimOptions so;
  so.offline_yaws_deg = {0.0};

  sim::LinkSimulator plain(p, tag, ch, so);
  auto p_cal = p;
  p_cal.pixel_calibration = true;
  sim::LinkSimulator calibrated(p_cal, tag, ch, so);
  const auto s_plain = plain.run(4, 24);
  const auto s_cal = calibrated.run(4, 24);
  EXPECT_LT(s_cal.ber(), 0.01);
  EXPECT_LE(s_cal.ber(), s_plain.ber());
}

TEST(Integration, SharedOfflineModelMatchesPerPointTraining) {
  const auto p = fast_params();
  const auto tag = p.tag_config();
  sim::ChannelConfig ch;
  ch.snr_override_db = 35.0;
  const auto model = sim::train_offline_model(p, tag);
  sim::SimOptions shared;
  shared.shared_offline_model = model;
  sim::SimOptions fresh;
  fresh.offline_yaws_deg = {0.0};
  sim::LinkSimulator a(p, tag, ch, shared);
  sim::LinkSimulator b(p, tag, ch, fresh);
  EXPECT_EQ(a.run(2, 16).bit_errors, b.run(2, 16).bit_errors);
}

}  // namespace
}  // namespace rt
