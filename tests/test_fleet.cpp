// Tests for the fleet layer: deployment geometry and shard assignment,
// cross-reader slot scheduling, the sharded inventory campaign's
// determinism contract (serial == N-thread, batch-grain invariance,
// controller-state isolation), cross-cell collision accounting and the
// parallel waveform-level collision study.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "fleet/campaign.h"
#include "fleet/collision.h"
#include "fleet/geometry.h"
#include "fleet/scheduler.h"

namespace rt::fleet {
namespace {

DeploymentConfig small_deployment(int readers, int tags, double spacing_m = 6.0) {
  DeploymentConfig d;
  d.readers = readers;
  d.tags = tags;
  d.reader_spacing_m = spacing_m;
  return d;
}

FleetConfig small_campaign(int readers, int tags) {
  FleetConfig cfg;
  cfg.deployment = small_deployment(readers, tags);
  cfg.epochs = 2;
  cfg.rounds_per_epoch = 8;
  cfg.batch_rounds = 3;
  cfg.seed = 321;
  return cfg;
}

// ---------------------------------------------------------------------------
// geometry

TEST(DeploymentTest, PlacementIsAPureFunctionOfConfigAndSeed) {
  const auto cfg = small_deployment(3, 120);
  const Deployment a = place_fleet(cfg, 7);
  const Deployment b = place_fleet(cfg, 7);
  EXPECT_TRUE(a == b);
  const Deployment c = place_fleet(cfg, 8);
  EXPECT_FALSE(a == c) << "a different seed must move the tags";
}

TEST(DeploymentTest, ShardsPartitionThePopulation) {
  const Deployment d = place_fleet(small_deployment(4, 500), 11);
  std::vector<int> seen(d.tags.size(), 0);
  for (std::size_t r = 0; r < d.shards.size(); ++r) {
    for (const std::uint32_t id : d.shards[r]) {
      ++seen[id];
      EXPECT_EQ(d.tags[id].home_reader, r);
    }
  }
  for (const int s : seen) EXPECT_EQ(s, 1) << "every tag homes to exactly one shard";
  // The diagonal of the audibility table is bounded by the shard size.
  for (std::size_t r = 0; r < d.shards.size(); ++r)
    EXPECT_LE(d.audible[r][r], d.shards[r].size());
}

TEST(DeploymentTest, ExplicitSitesHomeToTheNearestReader) {
  const auto cfg = small_deployment(2, 2, 10.0);
  const Deployment d = place_fleet(cfg, {{0.5, 1.0}, {9.5, -1.0}});
  EXPECT_EQ(d.tags[0].home_reader, 0u);
  EXPECT_EQ(d.tags[1].home_reader, 1u);
  EXPECT_GT(d.tags[0].home_snr_db, d.snr_db_at(d.tags[0], 1));
}

// ---------------------------------------------------------------------------
// scheduler

TEST(SchedulerTest, OverlappingReadersGetDistinctColors) {
  // 2 m pitch: every tag is audible at both readers, so the cells
  // conflict and the coordinated schedule must separate them in time.
  const Deployment d = place_fleet(small_deployment(2, 60, 2.0), 5);
  ASSERT_TRUE(d.conflicts(0, 1));
  const SlotSchedule s = plan_slot_schedule(d, true);
  EXPECT_NE(s.colors[0], s.colors[1]);
  EXPECT_EQ(s.num_colors, 2u);
  EXPECT_DOUBLE_EQ(s.airtime_share(), 0.5);
}

TEST(SchedulerTest, IsolatedReadersShareOneColor) {
  // 200 m pitch: no tag of one cell is audible at the other, so both
  // readers poll concurrently at full airtime.
  const Deployment d = place_fleet(small_deployment(2, 60, 200.0), 5);
  ASSERT_FALSE(d.conflicts(0, 1));
  const SlotSchedule s = plan_slot_schedule(d, true);
  EXPECT_EQ(s.num_colors, 1u);
  EXPECT_DOUBLE_EQ(s.airtime_share(), 1.0);
}

TEST(SchedulerTest, UncoordinatedScheduleIsOneClassAtFullAirtime) {
  const Deployment d = place_fleet(small_deployment(3, 90, 2.0), 5);
  const SlotSchedule s = plan_slot_schedule(d, false);
  EXPECT_FALSE(s.coordinated);
  EXPECT_EQ(s.num_colors, 1u);
  EXPECT_DOUBLE_EQ(s.airtime_share(), 1.0);
}

// ---------------------------------------------------------------------------
// campaign determinism (the PR 2 contract at fleet scale)

TEST(FleetCampaignTest, SerialEqualsParallelBitIdentical) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  FleetConfig cfg = small_campaign(3, 200);
  cfg.threads = 1;
  const FleetResult serial = run_fleet_campaign(table, model, cfg);
  for (const unsigned threads : {2u, 4u, 7u}) {
    cfg.threads = threads;
    const FleetResult parallel = run_fleet_campaign(table, model, cfg);
    EXPECT_TRUE(serial.identical(parallel))
        << "fleet campaign diverged at " << threads << " threads";
  }
}

TEST(FleetCampaignTest, BatchGrainDoesNotChangeResults) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  FleetConfig cfg = small_campaign(3, 200);
  cfg.threads = 4;
  cfg.batch_rounds = 1;
  const FleetResult fine = run_fleet_campaign(table, model, cfg);
  cfg.batch_rounds = 3;
  const FleetResult medium = run_fleet_campaign(table, model, cfg);
  cfg.batch_rounds = cfg.rounds_per_epoch;
  const FleetResult coarse = run_fleet_campaign(table, model, cfg);
  // Round g of reader r is a pure function of (seed, r, g), so the batch
  // partition cannot show through in the data-derived results. Only the
  // sweep_batch span/counter bookkeeping differs between grains, so this
  // compares the result fields rather than identical().
  EXPECT_EQ(fine.readers, medium.readers);
  EXPECT_EQ(fine.readers, coarse.readers);
  EXPECT_EQ(fine.discovery_round, medium.discovery_round);
  EXPECT_EQ(fine.discovery_round, coarse.discovery_round);
}

TEST(FleetCampaignTest, ExplicitDeploymentMatchesSeedBuiltDeployment) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  const FleetConfig cfg = small_campaign(2, 80);
  const FleetResult implicit = run_fleet_campaign(table, model, cfg);
  const FleetResult explicit_dep =
      run_fleet_campaign(table, model, cfg, place_fleet(cfg.deployment, cfg.seed));
  EXPECT_TRUE(implicit.identical(explicit_dep));
}

TEST(FleetCampaignTest, ControllerStateIsIsolatedPerReader) {
  // The same cell embedded in a larger (but non-interfering) fleet must
  // produce the identical per-reader outcome: reader r's streams are
  // keyed by (seed, r, round) and its controller never sees another
  // cell's estimates. Far spacing keeps shard contents identical.
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  const std::vector<std::pair<double, double>> near_sites = {
      {0.2, 1.0}, {-0.8, -1.5}, {0.9, 2.0}, {0.0, -2.5}};

  FleetConfig solo = small_campaign(1, 4);
  const Deployment solo_dep = place_fleet(solo.deployment, near_sites);

  FleetConfig duo = small_campaign(2, 8);
  duo.deployment.reader_spacing_m = 500.0;
  std::vector<std::pair<double, double>> duo_sites = near_sites;
  for (const auto& [x, y] : near_sites) duo_sites.emplace_back(x + 500.0, y);
  const Deployment duo_dep = place_fleet(duo.deployment, duo_sites);
  ASSERT_FALSE(duo_dep.conflicts(0, 1));
  ASSERT_EQ(duo_dep.shards[0], solo_dep.shards[0]);

  const FleetResult solo_run = run_fleet_campaign(table, model, solo, solo_dep);
  const FleetResult duo_run = run_fleet_campaign(table, model, duo, duo_dep);
  ReaderOutcome lhs = solo_run.readers[0];
  ReaderOutcome rhs = duo_run.readers[0];
  EXPECT_EQ(lhs, rhs);
  for (std::size_t id = 0; id < solo_dep.tags.size(); ++id)
    EXPECT_EQ(solo_run.discovery_round[id], duo_run.discovery_round[id]);
}

// ---------------------------------------------------------------------------
// collision accounting

TEST(FleetCampaignTest, CoordinationEliminatesCrossCellCollisions) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  FleetConfig cfg = small_campaign(3, 240);
  cfg.deployment.reader_spacing_m = 2.0;  // heavy overlap
  cfg.coordinate_readers = true;
  const FleetResult coordinated = run_fleet_campaign(table, model, cfg);
  EXPECT_EQ(coordinated.cross_collisions, 0u);
  EXPECT_GT(coordinated.num_colors, 1u);

  cfg.coordinate_readers = false;
  const FleetResult contended = run_fleet_campaign(table, model, cfg);
  EXPECT_GT(contended.cross_collisions, 0u)
      << "overlapping uncoordinated cells must collide";
  EXPECT_GT(contended.collision_rate, 0.0);
  // Reader outcomes reconcile: every attempted slot is delivered, lost to
  // the channel, or lost to a cross-cell collision.
  for (const ReaderOutcome& r : contended.readers) {
    EXPECT_LE(r.delivered + r.cross_collisions, r.slots);
    EXPECT_EQ(r.slots, r.shard_tags * 16u);  // epochs * rounds_per_epoch
  }
}

TEST(FleetCampaignTest, IsolatedCellsNeverCollideEvenUncoordinated) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  FleetConfig cfg = small_campaign(3, 120);
  cfg.deployment.reader_spacing_m = 200.0;
  cfg.coordinate_readers = false;
  const FleetResult r = run_fleet_campaign(table, model, cfg);
  EXPECT_EQ(r.cross_collisions, 0u);
}

// ---------------------------------------------------------------------------
// scale

TEST(FleetCampaignTest, ThousandTagsFourReadersConverges) {
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  FleetConfig cfg;
  cfg.deployment = small_deployment(4, 1000);
  cfg.epochs = 2;
  cfg.rounds_per_epoch = 10;
  cfg.threads = 4;
  cfg.seed = 2026;
  const FleetResult r = run_fleet_campaign(table, model, cfg);
  EXPECT_EQ(r.slots, 1000u * 20u);
  EXPECT_GT(r.fleet_goodput_bps, 0.0);
  EXPECT_GT(r.delivery_rate, 0.5) << "most slots should deliver under adapted rates";
  for (std::size_t id = 0; id < 1000; ++id)
    EXPECT_GT(r.discovery_round[id], 0u) << "tag " << id << " never discovered";
  EXPECT_GE(r.mean_discovery_rounds, 1.0);
  std::uint64_t shard_sum = 0;
  for (const ReaderOutcome& o : r.readers) shard_sum += o.shard_tags;
  EXPECT_EQ(shard_sum, 1000u);
}

// ---------------------------------------------------------------------------
// waveform-level collision study (the ported sim::multi_tag path)

TEST(CollisionStudyTest, PooledRunIsBitIdenticalAndGainDegradesTheLink) {
  CollisionStudyConfig cfg;
  cfg.interferer_gains = {0.0, 1.0};
  cfg.trials = 2;
  cfg.threads = 1;
  const CollisionStudyResult serial = run_collision_study(cfg);
  cfg.threads = 4;
  const CollisionStudyResult pooled = run_collision_study(cfg);
  EXPECT_TRUE(serial.identical(pooled));

  ASSERT_EQ(serial.points.size(), 2u);
  const double clean = serial.points[0].stats.ber();
  const double collided = serial.points[1].stats.ber();
  EXPECT_LT(clean, 0.01);
  EXPECT_GT(collided, 10.0 * std::max(clean, 0.005))
      << "an equal-power concurrent tag must corrupt the uplink";
}

}  // namespace
}  // namespace rt::fleet
