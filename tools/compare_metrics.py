#!/usr/bin/env python3
"""Diff two BENCH_*.metrics.json files (schema rt-metrics-v2).

Compares a candidate metrics file against a baseline along three axes:

  counters      exact comparison. The obs counter registry is deterministic
                at any thread count (docs/TELEMETRY.md), so any drift in a
                counter other than `trace_spans_dropped` is a behaviour
                change, not noise. `trace_spans_dropped` depends on the
                trace-buffer fill order and is always ignored.

  stage shares  each stage's share of total traced wall time. Shares are
                far more stable than absolute durations across machines,
                so this is the default CI gate: a stage whose share grew
                by more than --max-share-drift-pct percentage points
                (and whose absolute share is above --min-share-pct, to
                skip noise-dominated micro-stages) fails the check.

  absolute time per-stage total_us slowdown. Only meaningful on the same
                machine (consecutive local runs); enabled by passing
                --max-slowdown-pct explicitly.

With --update-baseline the comparison is skipped: the candidate is
rewritten onto the baseline path with a `provenance` object (UTC
timestamp, source path, git commit, generator) so a committed baseline
always says where it came from. Re-run the gate afterwards to confirm
the fresh baseline passes against its own source.

Exit codes: 0 = within thresholds, 1 = regression found, 2 = bad input.

Usage:
  python3 tools/compare_metrics.py BASELINE.json CANDIDATE.json
  python3 tools/compare_metrics.py --max-slowdown-pct 25 old.json new.json
  python3 tools/compare_metrics.py --update-baseline \\
      tools/baselines/BENCH_x.metrics.json build-obs/bench/BENCH_x.metrics.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys

SCHEMAS = ("rt-metrics-v1", "rt-metrics-v2")

# Counters excluded from the exact comparison: their values depend on
# scheduling order, not simulated behaviour.
NONDETERMINISTIC_COUNTERS = {"trace_spans_dropped"}


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"compare_metrics: error: cannot read {path}: {e}")
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        raise SystemExit(
            f"compare_metrics: error: {path}: unsupported schema {schema!r} "
            f"(expected one of {', '.join(SCHEMAS)})"
        )
    return doc


def stage_table(doc: dict) -> dict[str, dict]:
    return doc.get("stages", {}) or {}


def compare_counters(base: dict, cand: dict, failures: list[str]) -> None:
    b = base.get("counters", {})
    c = cand.get("counters", {})
    for name in sorted(set(b) | set(c)):
        if name in NONDETERMINISTIC_COUNTERS:
            continue
        bv, cv = b.get(name), c.get(name)
        if bv != cv:
            failures.append(
                f"counter {name}: baseline {bv} != candidate {cv} "
                "(counters are deterministic; this is a behaviour change)"
            )


def compare_stage_shares(
    base: dict, cand: dict, max_drift_pct: float, min_share_pct: float, failures: list[str]
) -> None:
    bs, cs = stage_table(base), stage_table(cand)
    if not bs or not cs:
        return
    b_total = sum(s.get("total_us", 0.0) for s in bs.values())
    c_total = sum(s.get("total_us", 0.0) for s in cs.values())
    if b_total <= 0.0 or c_total <= 0.0:
        return
    for name in sorted(set(bs) & set(cs)):
        b_share = 100.0 * bs[name].get("total_us", 0.0) / b_total
        c_share = 100.0 * cs[name].get("total_us", 0.0) / c_total
        if c_share < min_share_pct:
            continue
        drift = c_share - b_share
        if drift > max_drift_pct:
            failures.append(
                f"stage {name}: share of traced time grew {b_share:.1f}% -> "
                f"{c_share:.1f}% (+{drift:.1f} pp > {max_drift_pct:.1f} pp allowed)"
            )
    for name in sorted(set(bs) - set(cs)):
        if 100.0 * bs[name].get("total_us", 0.0) / b_total >= min_share_pct:
            print(f"compare_metrics: note: stage {name} present in baseline only")
    for name in sorted(set(cs) - set(bs)):
        if 100.0 * cs[name].get("total_us", 0.0) / c_total >= min_share_pct:
            print(f"compare_metrics: note: stage {name} present in candidate only")


def compare_absolute(
    base: dict, cand: dict, max_slowdown_pct: float, min_total_us: float, failures: list[str]
) -> None:
    bs, cs = stage_table(base), stage_table(cand)
    for name in sorted(set(bs) & set(cs)):
        b_us = bs[name].get("total_us", 0.0)
        c_us = cs[name].get("total_us", 0.0)
        if b_us < min_total_us:
            continue
        slowdown = 100.0 * (c_us - b_us) / b_us
        if slowdown > max_slowdown_pct:
            failures.append(
                f"stage {name}: total_us {b_us:.1f} -> {c_us:.1f} "
                f"(+{slowdown:.1f}% > {max_slowdown_pct:.1f}% allowed)"
            )


def print_summary(base: dict, cand: dict) -> None:
    bs, cs = stage_table(base), stage_table(cand)
    names = sorted(set(bs) | set(cs))
    if not names:
        print("compare_metrics: no stage data in either file (counters only)")
        return
    b_total = sum(s.get("total_us", 0.0) for s in bs.values()) or 1.0
    c_total = sum(s.get("total_us", 0.0) for s in cs.values()) or 1.0
    print(f"{'stage':<20} {'base_us':>12} {'cand_us':>12} {'base_%':>8} {'cand_%':>8}")
    for name in names:
        b = bs.get(name, {})
        c = cs.get(name, {})
        b_us = b.get("total_us", 0.0)
        c_us = c.get("total_us", 0.0)
        print(
            f"{name:<20} {b_us:>12.1f} {c_us:>12.1f} "
            f"{100.0 * b_us / b_total:>7.1f}% {100.0 * c_us / c_total:>7.1f}%"
        )


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=pathlib.Path(__file__).resolve().parent,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def update_baseline(baseline_path: str, candidate_path: str) -> int:
    doc = load(candidate_path)
    doc["provenance"] = {
        "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "source": candidate_path,
        "git_commit": git_commit(),
        "generator": "tools/compare_metrics.py --update-baseline",
    }
    path = pathlib.Path(baseline_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"compare_metrics: baseline {baseline_path} regenerated from {candidate_path}")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="compare_metrics.py",
        description="Diff two rt-metrics JSON files and fail on regressions.",
    )
    ap.add_argument("baseline", help="baseline metrics.json")
    ap.add_argument("candidate", help="candidate metrics.json")
    ap.add_argument(
        "--max-share-drift-pct",
        type=float,
        default=15.0,
        metavar="PP",
        help="max percentage-point growth of a stage's share of traced time "
        "(default: %(default)s; robust across machines)",
    )
    ap.add_argument(
        "--min-share-pct",
        type=float,
        default=2.0,
        metavar="PCT",
        help="ignore stages below this share of traced time (default: %(default)s)",
    )
    ap.add_argument(
        "--max-slowdown-pct",
        type=float,
        default=None,
        metavar="PCT",
        help="also gate absolute per-stage total_us slowdown (same-machine "
        "runs only; off by default)",
    )
    ap.add_argument(
        "--min-total-us",
        type=float,
        default=1000.0,
        metavar="US",
        help="ignore stages below this baseline total_us in the absolute "
        "check (default: %(default)s)",
    )
    ap.add_argument(
        "--no-counters", action="store_true", help="skip the exact counter comparison"
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate BASELINE from CANDIDATE (with provenance) instead "
        "of comparing",
    )
    args = ap.parse_args(argv)

    if args.update_baseline:
        return update_baseline(args.baseline, args.candidate)

    base = load(args.baseline)
    cand = load(args.candidate)

    failures: list[str] = []
    if not args.no_counters:
        compare_counters(base, cand, failures)
    compare_stage_shares(
        base, cand, args.max_share_drift_pct, args.min_share_pct, failures
    )
    if args.max_slowdown_pct is not None:
        compare_absolute(base, cand, args.max_slowdown_pct, args.min_total_us, failures)

    print_summary(base, cand)
    if failures:
        for f in failures:
            print(f"compare_metrics: FAIL: {f}", file=sys.stderr)
        print(f"compare_metrics: {len(failures)} regression(s)", file=sys.stderr)
        return 1
    print("compare_metrics: OK (no regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
