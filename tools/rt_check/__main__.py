"""rt_check CLI.

Usage:
  python3 tools/rt_check [--root DIR] [--rules C1,C2,C3,C4,C5] [--json OUT]
                         [--spec PATH] [--engine auto|clang|tokens]
                         [--no-doc-drift] [--print-spec] [-v]

Exit status: 0 clean, 1 findings, 2 bad invocation / broken spec.
Human output mirrors rt_lint (`path:line: [rule] message`); --json writes
the same findings as a machine-readable report (uploaded as a CI
artifact by the lint job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Invoked as `python3 tools/rt_check`: bootstrap the package so the
    # relative imports below resolve (same behaviour as `python3 -m
    # rt_check` with tools/ on PYTHONPATH).
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    __package__ = "rt_check"  # noqa: A001

from . import __version__
from .source import iter_source_files
from . import cpp_index
from .rules import (check_concurrency, check_determinism, check_hotpath_alloc,
                    check_layering, check_simd_containment, load_layering_spec,
                    render_layering_spec)

RULE_IDS = ("C1", "C2", "C3", "C4", "C5")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="rt_check", description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent.parent,
                    help="repo root to scan (default: this checkout)")
    ap.add_argument("--rules", default="C1,C2,C3,C4,C5",
                    help="comma-separated subset of C1,C2,C3,C4,C5")
    ap.add_argument("--json", type=Path, default=None,
                    help="write findings as JSON to this path")
    ap.add_argument("--spec", type=Path, default=None,
                    help="layering spec (default: <package>/layering.json)")
    ap.add_argument("--engine", choices=("auto", "clang", "tokens"),
                    default="auto", help="C2 indexing engine")
    ap.add_argument("--no-doc-drift", action="store_true",
                    help="skip the ARCHITECTURE.md byte-for-byte spec check")
    ap.add_argument("--print-spec", action="store_true",
                    help="print the canonical DAG rendering and exit")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    bad = [r for r in rules if r not in RULE_IDS]
    if bad:
        print(f"rt_check: unknown rule(s): {', '.join(bad)}", file=sys.stderr)
        return 2

    spec_path = args.spec or Path(__file__).resolve().parent / "layering.json"
    try:
        spec = load_layering_spec(spec_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"rt_check: cannot load layering spec: {e}", file=sys.stderr)
        return 2

    if args.print_spec:
        sys.stdout.write(render_layering_spec(spec))
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"rt_check: no src/ under {root}", file=sys.stderr)
        return 2

    files = list(iter_source_files(root))
    findings = []
    engine = "n/a"

    if "C1" in rules:
        findings.extend(check_determinism(files))

    if "C2" in rules:
        index = None
        if args.engine in ("auto", "clang"):
            try:
                from . import clang_backend
                index = clang_backend.build_index(files, root)
                engine = "clang"
            except clang_backend.EngineUnavailable as e:
                if args.engine == "clang":
                    print(f"rt_check: clang engine unavailable: {e}",
                          file=sys.stderr)
                    return 2
                print(f"rt_check: note: {e}; using token-level engine",
                      file=sys.stderr)
        if index is None:
            index = cpp_index.build_index(files)
            engine = "tokens"
        c2, reachable = check_hotpath_alloc(files, index)
        findings.extend(c2)
        if args.verbose:
            print(f"rt_check: C2 engine={engine}, "
                  f"{len(index.functions)} functions indexed, "
                  f"{len(reachable)} reachable from the hot-path roots",
                  file=sys.stderr)

    if "C3" in rules:
        findings.extend(check_layering(files, spec, root,
                                       check_docs=not args.no_doc_drift))

    if "C4" in rules:
        findings.extend(check_concurrency(files))

    if "C5" in rules:
        findings.extend(check_simd_containment(files))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    if args.json:
        report = {
            "tool": "rt_check",
            "version": __version__,
            "engine": engine,
            "rules": rules,
            "files_scanned": len(files),
            "findings": [f.as_json() for f in findings],
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n",
                             encoding="utf-8")
    print(f"rt_check: scanned {len(files)} files, rules {','.join(rules)}, "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
