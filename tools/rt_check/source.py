"""Source-file model shared by every rt_check rule.

Loads a C++ file once, strips comments and string/char literals while
preserving the byte-for-byte line structure (so offsets map to line
numbers exactly), and parses `// rt-check: <rule>-ok (<why>)`
suppression annotations from the raw text.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from pathlib import Path

# Annotation must carry a non-empty parenthesised reason; a bare tag does
# not suppress (same contract as rt-lint's narrowing-ok).
SUPPRESS_RE = re.compile(r"//\s*rt-check:\s*([a-z]+)-ok\s*\(([^)]+)\)")

#: rule-id -> annotation tag
RULE_TAGS = {
    "determinism": "determinism",
    "hotpath-alloc": "alloc",
    "layering": "layering",
    "concurrency": "sync",
    "simd-containment": "simd",
}


@dataclass
class Finding:
    path: str  # repo-relative, posix
    line: int  # 1-based
    rule: str  # "determinism" | "hotpath-alloc" | "layering" | "layering-docs"
    #          # | "concurrency" | "simd-containment"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string/char literal *contents* with spaces,
    keeping every newline, so the stripped text has identical offsets and
    line numbers to the original. Handles //, /* */, "...", '...', and
    R"delim(...)delim" raw strings."""
    out = list(text)
    i, n = 0, len(text)

    def blank(lo: int, hi: int) -> None:
        for k in range(lo, hi):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if not m:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j == -1 else j + len(close)
            blank(i, j)
            i = j
        elif c in "\"'":
            # Skip char/string literal; keep the quotes so tokens on either
            # side stay separated.
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


@dataclass
class SourceFile:
    rel: str  # repo-relative posix path
    raw: str
    stripped: str
    raw_lines: list[str] = field(default_factory=list)
    _line_starts: list[int] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        raw = path.read_text(encoding="utf-8", errors="replace")
        sf = cls(rel=rel, raw=raw, stripped=strip_comments_and_strings(raw))
        sf.raw_lines = raw.splitlines()
        starts, off = [0], 0
        for line in raw.split("\n")[:-1]:
            off += len(line) + 1
            starts.append(off)
        sf._line_starts = starts
        return sf

    def line_of(self, offset: int) -> int:
        """1-based line number of a byte offset (valid for raw AND stripped
        text -- stripping preserves offsets)."""
        return bisect.bisect_right(self._line_starts, offset)

    def suppressed(self, line: int, rule: str) -> bool:
        """True when `line` (or the line above it) carries a
        `// rt-check: <tag>-ok (<why>)` annotation for this rule."""
        tag = RULE_TAGS.get(rule, rule)
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.raw_lines):
                m = SUPPRESS_RE.search(self.raw_lines[ln - 1])
                if m and m.group(1) == tag and m.group(2).strip():
                    return True
        return False


def iter_source_files(root: Path, subdirs: tuple[str, ...] = ("src",)):
    """Yields SourceFile for every .h/.cpp under the given subdirs, sorted
    for deterministic output."""
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(p for p in base.rglob("*") if p.suffix in (".h", ".cpp")):
            yield SourceFile.load(path, path.relative_to(root).as_posix())
