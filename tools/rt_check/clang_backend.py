"""libclang (python clang.cindex) function indexer.

Produces the same FunctionIndex shape as the token engine, but with a
real AST: qualified names come from semantic parents and call edges from
CALL_EXPR referents, so the C2 reachability set is tighter (fewer
name-collision edges) while findings stay line-identical -- the alloc
patterns are applied to the same body text offsets either way.

This backend is strictly best-effort: any import, library-load, or parse
failure raises EngineUnavailable and the driver falls back to the token
engine with a note. The container this repo usually builds in has no
libclang, so the fallback IS the battle-tested path; CI exercises
whichever is available (install `python3-clang` to opt in).
"""

from __future__ import annotations

import json
from pathlib import Path

from .cpp_index import FunctionDef, FunctionIndex, _collect_callees
from .source import SourceFile


class EngineUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as e:
        raise EngineUnavailable(f"clang.cindex not importable ({e})") from e
    try:
        cindex.Index.create()
    except Exception as e:  # LibclangError, OSError: no libclang.so
        raise EngineUnavailable(f"libclang not loadable ({e})") from e
    return cindex


def _compile_args(root: Path) -> dict[str, list[str]]:
    """Per-file compiler args from any build*/compile_commands.json, with a
    generic fallback for files not in the database (headers, fresh TUs)."""
    args: dict[str, list[str]] = {}
    for db in sorted(root.glob("build*/compile_commands.json")):
        try:
            for entry in json.loads(db.read_text(encoding="utf-8")):
                cmd = entry.get("command", "")
                toks = [t for t in cmd.split()[1:]
                        if t.startswith(("-I", "-D", "-std="))]
                args[str(Path(entry["directory"]) / entry["file"])] = toks
        except Exception:
            continue
        break
    return args


_DEFAULT_ARGS = ["-std=c++20", "-xc++"]


def build_index(files: list[SourceFile], root: Path) -> FunctionIndex:
    cindex = _load_cindex()
    index = FunctionIndex(engine="clang")
    per_file_args = _compile_args(root)
    by_rel = {sf.rel: sf for sf in files}
    ci = cindex.Index.create()
    fn_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.CONVERSION_FUNCTION,
    }
    seen_bodies: set[tuple[str, int]] = set()
    parsed_any = False

    def qualname(cur) -> str:
        parts = []
        c = cur
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def visit(cur, sf_lookup):
        for child in cur.get_children():
            loc_file = child.location.file
            rel = None
            if loc_file is not None:
                try:
                    rel = Path(loc_file.name).resolve().relative_to(
                        root.resolve()).as_posix()
                except ValueError:
                    rel = None
            if rel is None or rel not in sf_lookup:
                continue
            if child.kind in fn_kinds and child.is_definition():
                sf = sf_lookup[rel]
                ext = child.extent
                # Body offsets: find the opening brace inside the extent.
                start = ext.start.offset
                end = ext.end.offset
                brace = sf.stripped.find("{", start, end)
                if brace == -1:
                    continue
                key = (rel, brace)
                if key in seen_bodies:
                    continue
                seen_bodies.add(key)
                body = sf.stripped[brace:end]
                callees = set()
                stack = [child]
                while stack:
                    node = stack.pop()
                    for sub in node.get_children():
                        if sub.kind == cindex.CursorKind.CALL_EXPR and sub.spelling:
                            callees.add(sub.spelling)
                        stack.append(sub)
                # Union with textual candidates so macro-expanded calls
                # (RT_* wrappers) are not lost.
                callees |= _collect_callees(body)
                index.add(FunctionDef(
                    qualname=qualname(child), name=child.spelling or "?",
                    file=rel, line=sf.line_of(brace),
                    body_start=brace, body_end=end, callees=callees))
            visit(child, sf_lookup)

    for sf in files:
        if not sf.rel.endswith(".cpp"):
            continue
        abs_path = str((root / sf.rel).resolve())
        args = per_file_args.get(abs_path, _DEFAULT_ARGS + [f"-I{root / 'src'}"])
        try:
            tu = ci.parse(abs_path, args=args)
        except Exception as e:
            raise EngineUnavailable(f"parse failed for {sf.rel} ({e})") from e
        visit(tu.cursor, by_rel)
        parsed_any = True

    if not parsed_any or not index.functions:
        raise EngineUnavailable("libclang produced an empty index")
    return index
