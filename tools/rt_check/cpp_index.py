"""Token-level C++ function indexer (the libclang fallback engine).

Parses stripped source text into a brace tree, classifies each braced
group at namespace/class scope as a namespace, a type, or a function
definition, and records every function body with its qualified name and
the call-candidate identifiers inside it. Lambdas and nested blocks are
absorbed into their enclosing function, which is exactly what the
hot-path reachability rule wants.

This is a heuristic parser, not a compiler: it over-approximates the
call graph (a call edge exists to every indexed function sharing the
callee's name), which errs on the side of flagging more hot-path code --
the safe direction for an allocation lint. tests/lint fixtures pin its
behavior on both firing and clean exemplars.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .source import SourceFile

# Identifiers that look like calls but never are (or whose parens are not
# call expressions).
NOT_A_CALL = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "decltype", "noexcept", "static_assert", "catch", "throw", "assert",
    "defined", "case", "new", "delete", "co_await", "co_return", "co_yield",
    "requires", "explicit", "operator", "typeid",
})

# Headers introducing a scope that is not a function.
SCOPE_KEYWORDS = ("namespace", "class", "struct", "union", "enum")

CALL_RE = re.compile(r"([A-Za-z_][\w]*(?:::[A-Za-z_][\w]*)*)\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_][\w]*")


@dataclass
class FunctionDef:
    qualname: str          # e.g. "rt::phy::DfeEqualizer::equalize_into"
    name: str              # last component, e.g. "equalize_into"
    file: str              # repo-relative path
    line: int              # 1-based line of the body's opening brace
    body_start: int        # offset of '{' in the file text
    body_end: int          # offset one past the matching '}'
    callees: set[str] = field(default_factory=set)  # simple callee names


@dataclass
class FunctionIndex:
    functions: list[FunctionDef] = field(default_factory=list)
    by_name: dict[str, list[FunctionDef]] = field(default_factory=dict)
    engine: str = "tokens"

    def add(self, fn: FunctionDef) -> None:
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)


def _match_brace(text: str, open_at: int) -> int:
    """Offset one past the brace matching text[open_at] == '{'. Text must
    already be comment/string-stripped."""
    depth = 0
    for i in range(open_at, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _header_of(text: str, group_start: int, floor: int) -> str:
    """The declaration text owning the '{' at group_start: everything after
    the last top-level ';', '}' or '{' above it (but not before floor)."""
    lo = floor
    depth = 0
    # Walk backward; parens/brackets may nest (parameter lists, attributes).
    i = group_start - 1
    while i >= floor:
        c = text[i]
        if c in ")]":
            depth += 1
        elif c in "([":
            depth -= 1
        elif depth == 0 and c in ";}{":
            lo = i + 1
            break
        i -= 1
    return text[lo:group_start]


def _function_name(header: str) -> str | None:
    """Extracts the (possibly qualified) function name from a declaration
    header: the identifier chain immediately before the first top-level
    '(' that is not a pseudo-call keyword."""
    depth = 0
    angle = 0
    i = 0
    n = len(header)
    while i < n:
        c = header[i]
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c in "[":
            depth += 1
        elif c in "]":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0 and angle == 0:
            m = re.search(r"((?:~?[A-Za-z_][\w]*)(?:\s*::\s*~?[A-Za-z_][\w]*)*)\s*$",
                          header[:i])
            if m:
                name = re.sub(r"\s+", "", m.group(1))
                last = name.split("::")[-1].lstrip("~")
                if last not in NOT_A_CALL:
                    return name
            # keyword paren (e.g. decltype(...)) -- skip past it
            j = i
            d = 0
            while j < n:
                if header[j] == "(":
                    d += 1
                elif header[j] == ")":
                    d -= 1
                    if d == 0:
                        break
                j += 1
            i = j
        i += 1
    return None


def _scope_kind(header: str) -> tuple[str, str] | None:
    """Classifies a header that opens a non-function scope. Returns
    (kind, name) with kind in {namespace, type, other} or None when the
    header is a function candidate."""
    toks = IDENT_RE.findall(header)
    if not toks:
        return ("other", "")
    if "namespace" in toks:
        # `namespace rt::sim {` or anonymous `namespace {`
        m = re.search(r"namespace\s+([\w:]+)\s*$", header.strip())
        return ("namespace", m.group(1) if m else "")
    # A type definition header has class/struct/... as a keyword and no
    # parameter list after the type name (methods are handled as functions).
    for kw in ("class", "struct", "union", "enum"):
        if kw in toks:
            if "(" in header:
                # e.g. `struct X make_x()` would be a function returning X;
                # fall through to function classification.
                return None
            m = re.search(kw + r"\s+(?:alignas\s*\([^)]*\)\s*)?"
                               r"(?:\[\[[^\]]*\]\]\s*)?(?:class\s+)?([\w:]+)", header)
            return ("type", m.group(1) if m else "")
    return None


def _collect_callees(body: str) -> set[str]:
    callees: set[str] = set()
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        simple = name.split("::")[-1]
        if simple in NOT_A_CALL or name in NOT_A_CALL:
            continue
        callees.add(simple)
    return callees


def _index_region(sf: SourceFile, text: str, lo: int, hi: int,
                  scope: list[str], index: FunctionIndex) -> None:
    """Recursively indexes [lo, hi) of the stripped text at namespace/class
    scope."""
    i = lo
    floor = lo
    while i < hi:
        c = text[i]
        if c == "{":
            end = _match_brace(text, i)
            header = _header_of(text, i, floor)
            kind = _scope_kind(header)
            if kind is not None and kind[0] == "namespace":
                parts = [p for p in kind[1].split("::") if p]
                _index_region(sf, text, i + 1, end - 1, scope + parts, index)
            elif kind is not None and kind[0] == "type":
                name = kind[1].split("::")[-1]
                _index_region(sf, text, i + 1, end - 1, scope + [name], index)
            elif kind is not None:
                pass  # `= {...}` initializer, extern "C", attribute blob, ...
            else:
                fname = _function_name(header)
                if fname is not None:
                    qual = "::".join([p for p in scope if p] + [fname]) \
                        if "::" not in fname else "::".join(
                            [p for p in scope if p] + fname.split("::"))
                    body = text[i:end]
                    fn = FunctionDef(
                        qualname=qual,
                        name=fname.split("::")[-1],
                        file=sf.rel,
                        line=sf.line_of(i),
                        body_start=i,
                        body_end=end,
                        callees=_collect_callees(body),
                    )
                    index.add(fn)
                # else: data initializer / unrecognized -- skip.
            floor = end
            i = end
        elif c == ";":
            floor = i + 1
            i += 1
        else:
            i += 1


def index_file(sf: SourceFile, index: FunctionIndex) -> None:
    _index_region(sf, sf.stripped, 0, len(sf.stripped), [], index)


def build_index(files: list[SourceFile]) -> FunctionIndex:
    index = FunctionIndex()
    for sf in files:
        index_file(sf, index)
    return index
