"""The rt_check rule families: C1 determinism, C2 hot-path allocations,
C3 layering, C4 concurrency containment, C5 SIMD containment. Each
returns a list of Finding; suppression (`// rt-check: <tag>-ok (<why>)`)
is honored here so every rule shares identical annotation semantics."""

from __future__ import annotations

import json
import re
from collections import deque
from pathlib import Path

from .cpp_index import FunctionDef, FunctionIndex
from .source import Finding, SourceFile

# --------------------------------------------------------------------------
# C1 determinism
# --------------------------------------------------------------------------

# Modules whose results are never result-affecting by the layering spec
# (obs is wall-clock telemetry by design; nothing in it may feed results
# because no result-producing module reads it back).
C1_EXEMPT_MODULES = {"obs"}

C1_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd\s*::\s*s?rand\b|(?<![\w:.])s?rand\s*\("),
     "C library rand/srand is global-state nondeterminism; draw from an "
     "rt::Rng seeded via rt::split_seed"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is ambient entropy; seeds must come from "
     "rt::split_seed streams"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*(?:steady_clock|system_clock|"
                r"high_resolution_clock)\b"),
     "wall clocks in result-affecting code break the (seed, index) purity "
     "contract of run_packet"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
     "clock() is wall-clock state; results must be pure in (seed, index)"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?time\s*\("),
     "time() makes results depend on when the run happened"),
    (re.compile(r"\b(?:secure_)?getenv\s*\("),
     "environment reads make results host-dependent; thread configuration "
     "through explicit options structs"),
    (re.compile(r"__DATE__|__TIME__|__TIMESTAMP__"),
     "build-timestamp macros bake nondeterminism into the binary"),
    (re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
     "unordered container iteration order is unspecified and can leak into "
     "results; use a sorted container or a flat keyed buffer "
     "(cf. the DfeEqualizer memcmp merge keys)"),
    (re.compile(r"\bstd\s*::\s*hash\s*<[^<>]*\*\s*>"),
     "hashing pointer values is address-order nondeterminism"),
]


def check_determinism(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        parts = sf.rel.split("/")
        if len(parts) >= 2 and parts[0] == "src" and parts[1] in C1_EXEMPT_MODULES:
            continue
        for pat, why in C1_PATTERNS:
            for m in pat.finditer(sf.stripped):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "determinism"):
                    continue
                token = re.sub(r"\s+", "", m.group(0))
                findings.append(Finding(
                    sf.rel, line, "determinism",
                    f"`{token}` — {why}; or annotate "
                    "`// rt-check: determinism-ok (<why>)`"))
    return findings


# --------------------------------------------------------------------------
# C2 hot-path allocations
# --------------------------------------------------------------------------

# Roots: the packet entry point plus every stage *_into function. The
# call graph is name-resolved (over-approximate), so anything these could
# reach is scanned.
def _is_root(fn: FunctionDef) -> bool:
    if fn.name == "run_packet" and "LinkSimulator" in fn.qualname:
        return True
    if fn.name == "push_samples" and "StreamingReceiver" in fn.qualname:
        return True
    return fn.name.endswith("_into")


_PUSH_RE = re.compile(r"(?:\.|->)\s*(push_back|emplace_back)\s*\(")
_STR_DECL_RE = re.compile(r"\bstd\s*::\s*(?:string|ostringstream|stringstream)\b"
                          r"(?!\s*[&*])")
_OWNING_TMPL_RE = re.compile(
    r"\bstd\s*::\s*(vector|deque|list|map|set|multimap|multiset|"
    r"unordered_map|unordered_set|basic_string|function)\s*<")


def _receiver_before(body: str, at: int) -> str:
    """The receiver chain ending right before offset `at` (which points at
    the '.' or '-' of a member call): identifiers joined by '.', '->',
    and index brackets, e.g. `ws.cur[bi]` or `nb.decisions`."""
    i = at
    out = []
    while i > 0:
        c = body[i - 1]
        if c.isspace():
            i -= 1
            continue
        if c == "]":  # skip [...] index
            depth = 0
            while i > 0:
                c2 = body[i - 1]
                if c2 == "]":
                    depth += 1
                elif c2 == "[":
                    depth -= 1
                i -= 1
                if depth == 0:
                    break
            out.append("[]")
            continue
        if c.isalnum() or c == "_":
            j = i
            while j > 0 and (body[j - 1].isalnum() or body[j - 1] == "_"):
                j -= 1
            out.append(body[j:i])
            i = j
            # continue only through member access
            k = i
            while k > 0 and body[k - 1].isspace():
                k -= 1
            if k >= 2 and body[k - 2:k] == "->":
                out.append("->")
                i = k - 2
                continue
            if k >= 1 and body[k - 1] == ".":
                out.append(".")
                i = k - 1
                continue
            break
        break
    return "".join(reversed(out))


def _template_skip(body: str, open_angle: int) -> int:
    """Offset one past the '>' matching body[open_angle] == '<'."""
    depth = 0
    for i in range(open_angle, len(body)):
        c = body[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            break  # not a template argument list after all
    return open_angle + 1


def _alloc_findings_in(fn: FunctionDef, sf: SourceFile) -> list[Finding]:
    body = sf.stripped[fn.body_start:fn.body_end]
    base = fn.body_start
    out: list[Finding] = []

    def emit(off: int, what: str, why: str) -> None:
        line = sf.line_of(base + off)
        if sf.suppressed(line, "hotpath-alloc"):
            return
        out.append(Finding(
            sf.rel, line, "hotpath-alloc",
            f"{what} in `{fn.qualname}` (hot path, reachable from "
            f"run_packet/*_into): {why}; fix or annotate "
            "`// rt-check: alloc-ok (<why>)`"))

    for m in re.finditer(r"\bnew\b", body):
        emit(m.start(), "`new` expression",
             "heap allocation per call; pool the object in PacketWorkspace")
    for m in re.finditer(r"\bmake_(?:unique|shared)\b", body):
        emit(m.start(), f"`{m.group(0)}`",
             "heap allocation per call; pool the object in PacketWorkspace")
    for m in _STR_DECL_RE.finditer(body):
        emit(m.start(), "std::string/stream construction",
             "string building allocates; hot-path data should use "
             "preallocated buffers (cf. the flat memcmp merge keys)")
    for m in _OWNING_TMPL_RE.finditer(body):
        end = _template_skip(body, m.end() - 1)
        rest = body[end:end + 80].lstrip()
        if rest[:1] in ("&", "*"):
            continue  # reference/pointer to a container: no ownership here
        if not rest or not (rest[0].isalpha() or rest[0] == "_"):
            continue  # cast/template argument, not a declaration
        kind = m.group(1)
        if kind == "function":
            emit(m.start(), "std::function construction",
                 "type-erased callables allocate and indirect-call; use a "
                 "stage object or a template parameter")
        else:
            emit(m.start(), f"local std::{kind} declaration",
                 "a fresh owning container per call allocates; move it into "
                 "PacketWorkspace and reuse its capacity")
    for m in _PUSH_RE.finditer(body):
        recv = _receiver_before(body, m.start())
        if recv and re.search(re.escape(recv) + r"\s*\.\s*reserve\s*\(", body):
            continue  # capacity reserved in the same body
        emit(m.start(), f"unreserved `{recv or '?'}.{m.group(1)}`",
             "growth past capacity reallocates; reserve() in the same "
             "function or grow the buffer at workspace setup")
    return out


def check_hotpath_alloc(files: list[SourceFile],
                        index: FunctionIndex) -> tuple[list[Finding], list[str]]:
    """Returns (findings, reachable-function qualnames)."""
    by_file = {sf.rel: sf for sf in files}
    roots = [fn for fn in index.functions if _is_root(fn)]
    # Name-based reachability: over-approximate but safe.
    seen: set[int] = set()
    order: list[FunctionDef] = []
    queue = deque(roots)
    while queue:
        fn = queue.popleft()
        key = id(fn)
        if key in seen:
            continue
        seen.add(key)
        order.append(fn)
        for callee in sorted(fn.callees):
            for target in index.by_name.get(callee, ()):
                if id(target) not in seen:
                    queue.append(target)
    findings: list[Finding] = []
    for fn in order:
        sf = by_file.get(fn.file)
        if sf is None:
            continue
        findings.extend(_alloc_findings_in(fn, sf))
    return findings, [fn.qualname for fn in order]


# --------------------------------------------------------------------------
# C4 concurrency containment
# --------------------------------------------------------------------------

# Threading/synchronization is runtime/'s job (parallel_sweep owns the
# thread pool and the per-packet RNG splitting that keeps parallel runs
# bit-identical to serial ones); obs is exempt like C1 (its recorders may
# guard telemetry with atomics without affecting results).
C4_EXEMPT_MODULES = {"runtime", "obs"}

C4_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd\s*::\s*atomic\w*\b"),
     "atomics outside runtime/ hide cross-thread coupling from the "
     "determinism contract"),
    (re.compile(r"\bstd\s*::\s*(?:recursive_|timed_|shared_|recursive_timed_)?mutex\b"),
     "locks belong in runtime/; stage code must stay single-threaded pure "
     "so parallel_sweep can schedule it freely"),
    (re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "lock adoption outside runtime/ means a stage took a dependency on "
     "shared mutable state"),
    (re.compile(r"\bstd\s*::\s*condition_variable(?:_any)?\b"),
     "blocking synchronization outside runtime/ can deadlock the sweep "
     "scheduler"),
    (re.compile(r"\bstd\s*::\s*(?:counting_|binary_)?semaphore\b|"
                r"\bstd\s*::\s*(?:latch|barrier)\b"),
     "thread coordination primitives belong in runtime/"),
    (re.compile(r"\bstd\s*::\s*(?:call_once|once_flag)\b"),
     "once-initialization is hidden global state; thread it through "
     "explicit construction or keep it in runtime/"),
]


def check_concurrency(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        parts = sf.rel.split("/")
        if len(parts) >= 2 and parts[0] == "src" and parts[1] in C4_EXEMPT_MODULES:
            continue
        for pat, why in C4_PATTERNS:
            for m in pat.finditer(sf.stripped):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "concurrency"):
                    continue
                token = re.sub(r"\s+", "", m.group(0))
                findings.append(Finding(
                    sf.rel, line, "concurrency",
                    f"`{token}` — {why}; move it behind runtime/ or annotate "
                    "`// rt-check: sync-ok (<why>)`"))
    return findings


# --------------------------------------------------------------------------
# C5 SIMD containment
# --------------------------------------------------------------------------

# Intrinsics are allowed in exactly one file: the kernel dispatch header.
# Everything else — including the rest of src/kernels — must reach SIMD
# through the kernels:: API so the scalar backend stays the bit-exact
# specification and portability gates live in one place.
C5_ALLOWED_FILES = {"src/kernels/dispatch.h"}

C5_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"#\s*include\s*<(?:[xe]mmintrin|pmmintrin|tmmintrin|smmintrin|"
                r"nmmintrin|wmmintrin|immintrin|x86intrin|x86gprintrin|"
                r"arm_neon|arm_sve)\.h>"),
     "vendor intrinsic headers outside the dispatch header defeat the "
     "portable-backend contract"),
    (re.compile(r"\b_mm(?:256|512)?_\w+\s*\("),
     "raw vector intrinsics belong in src/kernels/dispatch.h; call the "
     "kernels:: API instead"),
    (re.compile(r"\b__m(?:64|128[di]?|256[di]?|512[di]?)\b"),
     "vector register types outside the dispatch header leak the backend "
     "choice into portable code"),
    (re.compile(r"#\s*pragma\s+omp\s+simd\b"),
     "pragma-driven vectorization bypasses the kernel layer's bit-identity "
     "taxonomy; write a kernels:: function with a scalar reference instead"),
]


def check_simd_containment(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        if sf.rel in C5_ALLOWED_FILES:
            continue
        for pat, why in C5_PATTERNS:
            for m in pat.finditer(sf.stripped):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "simd-containment"):
                    continue
                token = re.sub(r"\s+", "", m.group(0))
                findings.append(Finding(
                    sf.rel, line, "simd-containment",
                    f"`{token}` — {why}; or annotate "
                    "`// rt-check: simd-ok (<why>)`"))
    return findings


# --------------------------------------------------------------------------
# C3 layering
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def load_layering_spec(path: Path) -> dict:
    spec = json.loads(path.read_text(encoding="utf-8"))
    if "modules" not in spec or not isinstance(spec["modules"], dict):
        raise ValueError(f"{path}: layering spec needs a 'modules' object")
    return spec


def render_layering_spec(spec: dict) -> str:
    """Canonical flat rendering of the DAG. docs/ARCHITECTURE.md must
    contain this text byte for byte (the doc is the spec's cited source of
    truth; this keeps the two from drifting)."""
    modules = spec["modules"]
    width = max(len(m) for m in modules)
    lines = []
    for mod, deps in modules.items():
        deps_txt = " ".join(sorted(deps)) if deps else "(none)"
        lines.append(f"{mod.ljust(width)} -> {deps_txt}")
    return "\n".join(lines) + "\n"


def check_layering(files: list[SourceFile], spec: dict, root: Path,
                   check_docs: bool = True) -> list[Finding]:
    modules: dict[str, list[str]] = spec["modules"]
    findings: list[Finding] = []
    for sf in files:
        parts = sf.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        mod = parts[1]
        if mod not in modules:
            findings.append(Finding(
                sf.rel, 1, "layering",
                f"module `{mod}` is not in the layering spec "
                "(tools/rt_check/layering.json); add it with its allowed "
                "dependencies"))
            continue
        allowed = set(modules[mod]) | {mod}
        for m in INCLUDE_RE.finditer(sf.raw):
            # Skip directives that live inside comments: stripping blanks
            # them, so the raw '#' is gone from the stripped view.
            hash_off = m.start() + m.group(0).index("#")
            if sf.stripped[hash_off] != "#":
                continue
            inc = m.group(1)
            line = sf.line_of(m.start())
            target = inc.split("/")[0]
            if "/" not in inc or target not in modules:
                findings.append(Finding(
                    sf.rel, line, "layering",
                    f'`#include "{inc}"` — project includes must be '
                    "module-qualified paths under src/ "
                    '(e.g. "common/error.h")'))
                continue
            if target not in allowed:
                if sf.suppressed(line, "layering"):
                    continue
                findings.append(Finding(
                    sf.rel, line, "layering",
                    f"`{mod}` must not include `{target}` "
                    f"(allowed: {', '.join(sorted(allowed - {mod})) or 'nothing'}); "
                    "see the DAG in docs/ARCHITECTURE.md, or annotate "
                    "`// rt-check: layering-ok (<why>)`"))
    if check_docs:
        findings.extend(_check_doc_drift(spec, root))
    return findings


def _check_doc_drift(spec: dict, root: Path) -> list[Finding]:
    doc_rel = spec.get("source_of_truth", "docs/ARCHITECTURE.md")
    doc = root / doc_rel
    if not doc.is_file():
        return [Finding(doc_rel, 1, "layering-docs",
                        "layering spec cites this file as its source of "
                        "truth, but it does not exist")]
    text = doc.read_text(encoding="utf-8")
    rendered = render_layering_spec(spec)
    if rendered not in text:
        first = rendered.splitlines()[0]
        return [Finding(
            doc_rel, 1, "layering-docs",
            "the canonical DAG rendering from tools/rt_check/layering.json "
            f"does not appear verbatim (expected a block starting `{first}`); "
            "regenerate with `python3 tools/rt_check --print-spec` and paste "
            "it into the module-graph section")]
    return []
