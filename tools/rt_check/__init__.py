"""rt_check: AST-level invariant enforcement for the RetroTurbo repo.

Three rule families on top of the regex-grade tools/rt_lint.py (R1-R5):

  C1 determinism    result-affecting code under src/ must not consult wall
                    clocks, ambient entropy, the environment, or
                    iteration-order-unstable containers; all randomness
                    flows through rt::split_seed streams.
  C2 hotpath-alloc  the packet hot path (call graph rooted at
                    sim::LinkSimulator::run_packet and the stage *_into
                    entry points) must not construct heap-owning objects:
                    no `new`, make_unique/make_shared, std::function,
                    unreserved push_back, or std::string building. Static
                    complement to tests/test_alloc.cpp, which only covers
                    dynamically exercised paths.
  C3 layering       every project #include in src/ obeys the module DAG in
                    tools/rt_check/layering.json, and the spec's canonical
                    rendering matches docs/ARCHITECTURE.md byte for byte.

Engine: libclang (python clang.cindex) when importable, with a graceful
token-level fallback otherwise -- both produce the same FunctionIndex
shape consumed by the rules. Suppression syntax (same/previous line):

    // rt-check: <rule>-ok (<why>)        rule in {determinism, alloc, layering}

The `(<why>)` is mandatory; an annotation without a reason does not
suppress. See DESIGN.md "Static analysis" and tools/lint.sh.
"""

__version__ = "1.0"
