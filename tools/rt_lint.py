#!/usr/bin/env python3
"""RetroTurbo project linter: repo rules clang-tidy cannot express.

Rules (see DESIGN.md "Static analysis and lint"):

  R1 pragma-once      Every header under src/ starts its include guard with
                      `#pragma once`.
  R2 using-namespace  No `using namespace` at namespace/global scope in
                      headers (function-local is allowed).
  R3 narrow-cast      No raw `static_cast` to a sub-64-bit integer type in
                      src/. Use rt::narrow (always checked), rt::narrow_cast
                      (debug-checked, free in Release), or rt::saturate_cast
                      (clamping). A provably-safe site may instead carry the
                      annotation `// rt-lint: narrowing-ok (<why>)` on the
                      same line.
  R4 ensure-coverage  Every .cpp under src/ uses RT_ENSURE at least once
                      (public entry points must validate their inputs), or
                      carries `// rt-lint: no-preconditions (<why>)` near the
                      top of the file.
  R5 span-docs        Every RT_TRACE_SPAN("name") literal used in src/ or
                      bench/ appears in docs/TELEMETRY.md (the telemetry
                      schema is documentation-complete; tests/ may invent
                      throwaway names).

Exit status: 0 when clean, 1 when any finding is reported.
Usage: tools/rt_lint.py [root-dir]   (default: repo root inferred from the
script location; R1-R4 scan src/, R5 scans src/ and bench/.)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Casts to these targets must go through rt::narrow / rt::narrow_cast /
# rt::saturate_cast. 64-bit and pointer-sized targets (size_t, ptrdiff_t,
# int64_t, ...) are excluded: index widening is the common safe case and
# flagging it would bury real findings.
NARROW_INT_TYPES = (
    r"(?:signed\s+char|unsigned\s+char|char8_t|char16_t|char32_t|char|"
    r"short\s+int|unsigned\s+short\s+int|unsigned\s+short|short|"
    r"unsigned\s+int|unsigned|int|"
    r"(?:std::)?u?int(?:8|16|32)_t|(?:std::)?u?int_fast(?:8|16|32)_t)"
)
NARROW_CAST_RE = re.compile(r"\bstatic_cast<\s*" + NARROW_INT_TYPES + r"\s*>")
ALLOW_NARROW_RE = re.compile(r"//\s*rt-lint:\s*narrowing-ok")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
NO_PRECONDITIONS_RE = re.compile(r"//\s*rt-lint:\s*no-preconditions")

# Files that implement the checked-cast layer itself.
NARROW_RULE_EXEMPT = {"src/common/narrow.h", "src/common/error.h"}

TRACE_SPAN_RE = re.compile(r'RT_TRACE_SPAN\(\s*"([^"]+)"')


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals so casts
    mentioned in prose or log messages are not flagged."""
    out: list[str] = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path, rel: str, findings: list[str]) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    is_header = path.suffix == ".h"

    if is_header and "#pragma once" not in text:
        findings.append(f"{rel}:1: [pragma-once] header is missing `#pragma once`")

    brace_depth = 0
    for ln, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)

        if is_header and USING_NAMESPACE_RE.match(code) and brace_depth <= 1:
            # Depth <= 1 ~= namespace or global scope (function bodies are
            # deeper); good enough for this codebase's formatting.
            findings.append(
                f"{rel}:{ln}: [using-namespace] `using namespace` in a header "
                "pollutes every includer; qualify names instead"
            )

        if rel not in NARROW_RULE_EXEMPT:
            m = NARROW_CAST_RE.search(code)
            prev = lines[ln - 2] if ln >= 2 else ""
            annotated = ALLOW_NARROW_RE.search(raw) or ALLOW_NARROW_RE.search(prev)
            if m and not annotated:
                findings.append(
                    f"{rel}:{ln}: [narrow-cast] raw `{m.group(0)}` — use rt::narrow, "
                    "rt::narrow_cast, rt::saturate_cast, or annotate "
                    "`// rt-lint: narrowing-ok (<why>)`"
                )

        brace_depth += code.count("{") - code.count("}")

    if path.suffix == ".cpp":
        if "RT_ENSURE" not in text and not NO_PRECONDITIONS_RE.search(text):
            findings.append(
                f"{rel}:1: [ensure-coverage] no RT_ENSURE in this translation unit; "
                "validate public-API preconditions or annotate "
                "`// rt-lint: no-preconditions (<why>)`"
            )


def lint_span_docs(root: Path, findings: list[str]) -> int:
    """R5: every span name used in src/ or bench/ is documented in
    docs/TELEMETRY.md. Returns the number of files scanned."""
    telemetry = root / "docs" / "TELEMETRY.md"
    documented = telemetry.read_text(encoding="utf-8") if telemetry.is_file() else ""
    scanned = 0
    for sub in ("src", "bench"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(p for p in base.rglob("*") if p.suffix in (".h", ".cpp")):
            rel = path.relative_to(root).as_posix()
            scanned += 1
            for ln, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
                for name in TRACE_SPAN_RE.findall(raw):
                    if f"`{name}`" not in documented:
                        findings.append(
                            f"{rel}:{ln}: [span-docs] span \"{name}\" is not documented "
                            "in docs/TELEMETRY.md (add a row to the span table)"
                        )
    return scanned


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"rt_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[str] = []
    files = sorted(p for p in src.rglob("*") if p.suffix in (".h", ".cpp"))
    for path in files:
        lint_file(path, path.relative_to(root).as_posix(), findings)
    lint_span_docs(root, findings)

    for f in findings:
        print(f)
    print(
        f"rt_lint: scanned {len(files)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
