#!/usr/bin/env bash
# Diff-only clang-format gate: checks ONLY files touched relative to a base
# ref (default: merge-base with origin/main, falling back to HEAD~1, falling
# back to the full tree for shallow/fresh clones). Never reformats — exits 1
# with a diff when a touched file is mis-formatted.
#
# Usage: tools/format-check.sh [--all | --base <ref>]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format-check.sh: WARNING: clang-format not installed; skipping" >&2
  exit 0
fi

MODE="diff"
BASE=""
case "${1:-}" in
  --all) MODE="all" ;;
  --base) BASE="${2:?--base needs a ref}" ;;
  "") ;;
  *) echo "usage: tools/format-check.sh [--all | --base <ref>]" >&2; exit 2 ;;
esac

if [ "$MODE" = "all" ]; then
  mapfile -t FILES < <(git ls-files 'src/**/*.h' 'src/**/*.cpp' 'tests/*.cpp' \
                                    'bench/*.cpp' 'bench/*.h' 'examples/*.cpp')
else
  if [ -z "$BASE" ]; then
    BASE=$(git merge-base HEAD origin/main 2>/dev/null \
           || git rev-parse HEAD~1 2>/dev/null \
           || echo "")
  fi
  if [ -z "$BASE" ]; then
    echo "format-check.sh: no base ref available; checking full tree" >&2
    exec "$0" --all
  fi
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
                         'src/**/*.h' 'src/**/*.cpp' 'tests/*.cpp' \
                         'bench/*.cpp' 'bench/*.h' 'examples/*.cpp')
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "format-check.sh: no C++ files to check"
  exit 0
fi

STATUS=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || continue
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "format-check.sh: $f needs formatting:" >&2
    diff -u "$f" <(clang-format "$f") | head -40 >&2 || true
    STATUS=1
  fi
done

[ "$STATUS" -eq 0 ] && echo "format-check.sh: OK (${#FILES[@]} files)"
exit "$STATUS"
