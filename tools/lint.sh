#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over every translation unit (when
# clang-tidy is installed), the project linter tools/rt_lint.py, and the
# AST-level invariant checker tools/rt_check (determinism, hot-path
# allocations, module layering).
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: a configured build tree containing compile_commands.json
#              (default: build; the top-level CMakeLists exports it).
#
# Exit status is non-zero if any stage reports findings. When clang-tidy
# is not installed (e.g. the minimal container image) that stage is skipped
# with a warning; CI always installs it, so the gate stays meaningful.
# rt_check likewise prefers libclang and falls back to its token-level
# engine when clang.cindex is unavailable.
#
# Set RT_CHECK_JSON to also write the rt_check findings as JSON (CI
# uploads this as an artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
STATUS=0

# --- Stage 1: clang-tidy -----------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json not found; configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  # tests/lint/ holds linter fixtures (intentionally bad code, not built).
  mapfile -t TUS < <(find src tests bench examples -name '*.cpp' \
    -not -path 'tests/lint/*' | sort)
  echo "lint.sh: clang-tidy over ${#TUS[@]} translation units"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "${TUS[@]}" || STATUS=1
  else
    for tu in "${TUS[@]}"; do
      clang-tidy -quiet -p "$BUILD_DIR" "$tu" || STATUS=1
    done
  fi
else
  echo "lint.sh: WARNING: clang-tidy not installed; skipping clang-tidy stage" >&2
fi

# --- Stage 2: project rules --------------------------------------------------
echo "lint.sh: rt_lint project rules"
python3 tools/rt_lint.py || STATUS=1

# --- Stage 3: rt_check invariants (C1 determinism, C2 hot-path alloc,
# C3 layering + doc drift) ----------------------------------------------------
echo "lint.sh: rt_check invariants"
RT_CHECK_ARGS=()
if [ -n "${RT_CHECK_JSON:-}" ]; then
  RT_CHECK_ARGS+=(--json "$RT_CHECK_JSON")
fi
python3 tools/rt_check "${RT_CHECK_ARGS[@]}" || STATUS=1

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: FAILED" >&2
else
  echo "lint.sh: OK"
fi
exit "$STATUS"
