#!/usr/bin/env bash
# API-reference build: doxygen over src/ + the markdown docs.
#
# Usage: tools/docs.sh
#   Output: build-docs/html/index.html
#
# Like tools/lint.sh, this degrades gracefully when doxygen is not
# installed (minimal container images): it prints a warning and exits 0
# so local runs never hard-fail; CI installs doxygen and the job fails
# there if the config rots.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v doxygen >/dev/null 2>&1; then
  echo "docs.sh: WARNING: doxygen not installed; skipping docs build" >&2
  exit 0
fi

echo "docs.sh: doxygen $(doxygen --version)"
doxygen docs/Doxyfile
echo "docs.sh: wrote build-docs/html/index.html"
