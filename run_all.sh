#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the full verification
# record referenced by EXPERIMENTS.md). Fails if any test or benchmark
# fails: `tee` no longer swallows exit codes.
set -euo pipefail
cd "$(dirname "$0")"

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
test "${PIPESTATUS[0]}" -eq 0

: > bench_output.txt
shopt -s nullglob
for b in build/bench/bench_*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
    test "${PIPESTATUS[0]}" -eq 0
  fi
done
