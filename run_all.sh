#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the full verification
# record referenced by EXPERIMENTS.md). Fails if any test or benchmark
# fails: `tee` no longer swallows exit codes.
#
# Usage: run_all.sh [build-dir]   (default: build)
#   Point it at an RT_OBS=ON tree (run_all.sh build-obs) and every bench
#   additionally prints its per-stage wall-time summary and writes
#   BENCH_*.trace.json / BENCH_*.metrics.json (see docs/TELEMETRY.md).
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

# Static analysis first: cheap, and a lint failure should stop the run
# before an hour of benches (clang-tidy stage skips itself when the
# binary is not installed; rt_lint + rt_check always run).
bash tools/lint.sh "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt
test "${PIPESTATUS[0]}" -eq 0

: > bench_output.txt
shopt -s nullglob
for b in "$BUILD_DIR"/bench/bench_*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
    test "${PIPESTATUS[0]}" -eq 0
  fi
done

# Surface the aggregate per-stage picture at the end of the record (the
# summaries are emitted by the benches themselves in RT_OBS builds).
if grep -q "stage " bench_output.txt 2>/dev/null; then
  echo
  echo "=== per-stage telemetry recorded (RT_OBS build) ==="
  echo "trace/metrics artifacts: $(ls BENCH_*.trace.json 2>/dev/null | wc -l) trace file(s);"
  echo "open any BENCH_*.trace.json at chrome://tracing or ui.perfetto.dev"
fi
