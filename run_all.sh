#!/usr/bin/env bash
# Regenerates test_output.txt and bench_output.txt (the full verification
# record referenced by EXPERIMENTS.md).
set -u
cd "$(dirname "$0")"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
